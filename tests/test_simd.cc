/**
 * @file
 * Kernel-layer tests: backend dispatch and scalar/AVX2 bit-identity.
 *
 * The contract under test is the one the whole data plane leans on:
 * every backend computes exactly the same words, so AEGIS_SIMD can
 * never change a simulation result. Each kernel is exercised across
 * span lengths that cover the vector body, the scalar tail, and the
 * empty span, on operands from a fixed-seed Rng.
 */

#include "util/simd/simd.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/simd/backends.h"

namespace aegis {
namespace {

using simd::Backend;

std::vector<std::uint64_t>
randomWords(std::size_t n, Rng &rng)
{
    std::vector<std::uint64_t> w(n);
    for (auto &x : w)
        x = rng.nextU64();
    return w;
}

/** Span lengths straddling the 4-word AVX2 body and its tail. */
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100};

class BackendPair : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        avx2 = simd::detail::avx2Backend();
        if (avx2 == nullptr)
            GTEST_SKIP() << "AVX2 backend unavailable on this build/CPU";
        scalar = &simd::detail::kScalarBackend;
    }

    const Backend *scalar = nullptr;
    const Backend *avx2 = nullptr;
};

TEST_F(BackendPair, InPlaceKernelsMatchScalar)
{
    Rng rng(0xABCDEF12345678ull);
    for (std::size_t n : kLengths) {
        const auto src = randomWords(n, rng);
        const auto dst0 = randomWords(n, rng);
        struct Case {
            const char *name;
            void (*Backend::*op)(std::uint64_t *, const std::uint64_t *,
                                 std::size_t);
        };
        const Case cases[] = {
            {"xor", &Backend::xorWords},
            {"or", &Backend::orWords},
            {"and", &Backend::andWords},
            {"andnot", &Backend::andNotWords},
        };
        for (const auto &c : cases) {
            auto a = dst0;
            auto b = dst0;
            (scalar->*(c.op))(a.data(), src.data(), n);
            (avx2->*(c.op))(b.data(), src.data(), n);
            EXPECT_EQ(a, b) << c.name << " n=" << n;
        }
    }
}

TEST_F(BackendPair, TernaryKernelsMatchScalar)
{
    Rng rng(0x5EED5EED5EEDull);
    for (std::size_t n : kLengths) {
        const auto value = randomWords(n, rng);
        const auto mask = randomWords(n, rng);
        const auto base = randomWords(n, rng);
        const auto dst0 = randomWords(n, rng);

        auto a = dst0;
        auto b = dst0;
        scalar->xorAndNotWords(a.data(), value.data(), mask.data(), n);
        avx2->xorAndNotWords(b.data(), value.data(), mask.data(), n);
        EXPECT_EQ(a, b) << "xorAndNot n=" << n;

        a = dst0;
        b = dst0;
        scalar->selectWords(a.data(), base.data(), value.data(),
                            mask.data(), n);
        avx2->selectWords(b.data(), base.data(), value.data(),
                          mask.data(), n);
        EXPECT_EQ(a, b) << "select n=" << n;
    }
}

TEST_F(BackendPair, ReductionsMatchScalar)
{
    Rng rng(0x1234123412341234ull);
    for (std::size_t n : kLengths) {
        const auto a = randomWords(n, rng);
        auto b = a;
        // A mismatch planted at every position in turn exercises every
        // word of the first-mismatch scan.
        EXPECT_EQ(scalar->popcountWords(a.data(), n),
                  avx2->popcountWords(a.data(), n));
        EXPECT_EQ(scalar->xorPopcountWords(a.data(), b.data(), n),
                  avx2->xorPopcountWords(a.data(), b.data(), n));
        EXPECT_EQ(avx2->firstMismatchWords(a.data(), b.data(), n), n);
        for (std::size_t flip = 0; flip < n; ++flip) {
            b[flip] ^= 0x8000000000000001ull;
            EXPECT_EQ(
                scalar->firstMismatchWords(a.data(), b.data(), n),
                avx2->firstMismatchWords(a.data(), b.data(), n))
                << "n=" << n << " flip=" << flip;
            EXPECT_EQ(scalar->xorPopcountWords(a.data(), b.data(), n),
                      avx2->xorPopcountWords(a.data(), b.data(), n));
            b[flip] = a[flip];
        }
    }
}

TEST_F(BackendPair, LaneReductionsMatchScalar)
{
    Rng rng(0xFACEFACEFACEull);
    const std::size_t words_per_lane = 5;
    const std::size_t lane_stride = 6; // one pad word between lanes
    const std::size_t lanes = 9;
    const auto a = randomWords(lane_stride * lanes, rng);
    const auto b = randomWords(lane_stride * lanes, rng);
    std::vector<std::size_t> outScalar(lanes);
    std::vector<std::size_t> outAvx2(lanes);

    scalar->popcountLanes(a.data(), words_per_lane, lane_stride, lanes,
                          outScalar.data());
    avx2->popcountLanes(a.data(), words_per_lane, lane_stride, lanes,
                        outAvx2.data());
    EXPECT_EQ(outScalar, outAvx2);

    scalar->xorPopcountLanes(a.data(), b.data(), words_per_lane,
                             lane_stride, lanes, outScalar.data());
    avx2->xorPopcountLanes(a.data(), b.data(), words_per_lane,
                           lane_stride, lanes, outAvx2.data());
    EXPECT_EQ(outScalar, outAvx2);
}

TEST(SimdDispatch, ScalarAlwaysSelectable)
{
    const std::string before = simd::backendName();
    ASSERT_TRUE(simd::selectBackend("scalar"));
    EXPECT_STREQ(simd::backendName(), "scalar");
    ASSERT_TRUE(simd::selectBackend("auto"));
    if (simd::avx2Available())
        EXPECT_STREQ(simd::backendName(), "avx2");
    else
        EXPECT_STREQ(simd::backendName(), "scalar");
    ASSERT_TRUE(simd::selectBackend(before));
}

TEST(SimdDispatch, UnknownBackendRejectedWithoutSideEffects)
{
    const std::string before = simd::backendName();
    EXPECT_FALSE(simd::selectBackend("avx512"));
    EXPECT_FALSE(simd::selectBackend(""));
    EXPECT_EQ(before, simd::backendName());
}

TEST(SimdDispatch, Avx2SelectableExactlyWhenAvailable)
{
    const std::string before = simd::backendName();
    EXPECT_EQ(simd::selectBackend("avx2"), simd::avx2Available());
    ASSERT_TRUE(simd::selectBackend(before));
}

} // namespace
} // namespace aegis
