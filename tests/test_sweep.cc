/**
 * @file
 * The sharded-sweep layer: ShardSpec grid partitioning, the
 * deterministic retry backoff, POSIX subprocess control, the shard
 * report codec, the bit-exact shard-checkpoint merge with its
 * validation/degradation behaviour, and an in-process end-to-end
 * check that shard → merge → resume reproduces the single-process
 * study byte for byte.
 */

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/checkpoint.h"
#include "sim/shard.h"
#include "sweep/merge.h"
#include "sweep/shard_report.h"
#include "sweep/supervisor.h"
#include "util/atomic_file.h"
#include "util/chaos.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/subprocess.h"

namespace aegis {
namespace {

/** Unique temp directory per test; removed recursively on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &name)
        : p((std::filesystem::temp_directory_path() /
             ("aegis_sweep_test_" + name + "_" +
              std::to_string(::getpid())))
                .string())
    {
        std::filesystem::remove_all(p);
        std::filesystem::create_directories(p);
    }
    ~TempDir() { std::filesystem::remove_all(p); }
    std::string file(const std::string &leaf) const
    {
        return p + "/" + leaf;
    }
    const std::string &str() const { return p; }

  private:
    std::string p;
};

TEST(ShardSpec, ParseAcceptsValidSpecs)
{
    const Expected<sim::ShardSpec> a = sim::ShardSpec::parse("0/1");
    ASSERT_TRUE(a.ok()) << a.error();
    EXPECT_EQ(a->index, 0u);
    EXPECT_EQ(a->count, 1u);
    EXPECT_FALSE(a->active());

    const Expected<sim::ShardSpec> b = sim::ShardSpec::parse("3/4");
    ASSERT_TRUE(b.ok()) << b.error();
    EXPECT_EQ(b->index, 3u);
    EXPECT_EQ(b->count, 4u);
    EXPECT_TRUE(b->active());
    EXPECT_EQ(b->label(), "3/4");
}

TEST(ShardSpec, ParseRejectsMalformedSpecs)
{
    for (const char *bad : {"", "1", "/", "1/", "/4", "a/b", "1/0",
                            "4/4", "5/4", "-1/4", "1/4/2", "1 /4"}) {
        const Expected<sim::ShardSpec> r = sim::ShardSpec::parse(bad);
        EXPECT_FALSE(r.ok()) << "accepted `" << bad << "'";
    }
    // The 1-based off-by-one gets a pointed message.
    const Expected<sim::ShardSpec> r = sim::ShardSpec::parse("4/4");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("0-based"), std::string::npos)
        << r.error();
}

TEST(ShardSpec, OwnsPartitionsTheGridExactly)
{
    // Every chunk is owned by exactly one of N shards.
    const std::uint32_t N = 4;
    for (std::size_t chunk = 0; chunk < 64; ++chunk) {
        std::size_t owners = 0;
        for (std::uint32_t i = 0; i < N; ++i)
            owners += sim::ShardSpec{i, N}.owns(chunk) ? 1 : 0;
        EXPECT_EQ(owners, 1u) << "chunk " << chunk;
    }
    // The unsharded spec owns everything.
    for (std::size_t chunk = 0; chunk < 16; ++chunk)
        EXPECT_TRUE(sim::ShardSpec{}.owns(chunk));
}

TEST(ShardSpec, ArtifactStemAppendsShardLeaf)
{
    EXPECT_EQ(sim::shardArtifactStem("/tmp/out", 2),
              "/tmp/out/shard_2");
    EXPECT_EQ(sim::shardArtifactStem("/tmp/out/", 0),
              "/tmp/out/shard_0");
}

TEST(BackoffPolicy, DeterministicExponentialWithCap)
{
    const BackoffPolicy policy{0.5, 8.0, 2.0};
    EXPECT_DOUBLE_EQ(policy.delaySec(0), 0.5);
    EXPECT_DOUBLE_EQ(policy.delaySec(1), 1.0);
    EXPECT_DOUBLE_EQ(policy.delaySec(2), 2.0);
    EXPECT_DOUBLE_EQ(policy.delaySec(3), 4.0);
    EXPECT_DOUBLE_EQ(policy.delaySec(4), 8.0);
    EXPECT_DOUBLE_EQ(policy.delaySec(5), 8.0);
    EXPECT_DOUBLE_EQ(policy.delaySec(100), 8.0); // no overflow
    // Same input, same delay: retries are reproducible.
    EXPECT_DOUBLE_EQ(policy.delaySec(3), policy.delaySec(3));
}

TEST(Subprocess, ExitCodeReported)
{
    const Expected<pid_t> pid = spawnProcess(
        SpawnSpec{{"/bin/sh", "-c", "exit 3"}, {}, "", ""});
    ASSERT_TRUE(pid.ok()) << pid.error();
    const Expected<ExitStatus> st = waitProcess(*pid);
    ASSERT_TRUE(st.ok()) << st.error();
    EXPECT_FALSE(st->signaled);
    EXPECT_EQ(st->code, 3);
    EXPECT_EQ(st->describe(), "exit 3");
    EXPECT_FALSE(st->ok());
}

TEST(Subprocess, EnvOverridesAndRedirection)
{
    TempDir dir("subproc_env");
    const std::string out = dir.file("child.out");
    const Expected<pid_t> pid = spawnProcess(SpawnSpec{
        {"/bin/sh", "-c", "printf '%s' \"$AEGIS_TEST_VALUE\""},
        {{"AEGIS_TEST_VALUE", "injected"}},
        out,
        ""});
    ASSERT_TRUE(pid.ok()) << pid.error();
    const Expected<ExitStatus> st = waitProcess(*pid);
    ASSERT_TRUE(st.ok() && st->ok()) << st.error();
    std::ifstream f(out);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(text, "injected");

    // An empty value unsets the variable in the child.
    ::setenv("AEGIS_TEST_VALUE", "leaked", 1);
    const Expected<pid_t> pid2 = spawnProcess(SpawnSpec{
        {"/bin/sh", "-c", "test -z \"${AEGIS_TEST_VALUE+x}\""},
        {{"AEGIS_TEST_VALUE", ""}},
        "",
        ""});
    ::unsetenv("AEGIS_TEST_VALUE");
    ASSERT_TRUE(pid2.ok()) << pid2.error();
    const Expected<ExitStatus> st2 = waitProcess(*pid2);
    ASSERT_TRUE(st2.ok()) << st2.error();
    EXPECT_TRUE(st2->ok()) << st2->describe();
}

TEST(Subprocess, PollThenKillReportsSignal)
{
    const Expected<pid_t> pid = spawnProcess(
        SpawnSpec{{"/bin/sh", "-c", "sleep 30"}, {}, "", ""});
    ASSERT_TRUE(pid.ok()) << pid.error();
    EXPECT_FALSE(pollProcess(*pid).has_value()); // still running
    killProcess(*pid);
    const Expected<ExitStatus> st = waitProcess(*pid);
    ASSERT_TRUE(st.ok()) << st.error();
    EXPECT_TRUE(st->signaled);
    EXPECT_EQ(st->code, 9);
    EXPECT_EQ(st->describe(), "signal 9");
}

TEST(Subprocess, ExecFailureSurfacesAs127)
{
    const Expected<pid_t> pid = spawnProcess(SpawnSpec{
        {"/nonexistent-dir/no-such-binary"}, {}, "", ""});
    ASSERT_TRUE(pid.ok()) << pid.error();
    const Expected<ExitStatus> st = waitProcess(*pid);
    ASSERT_TRUE(st.ok()) << st.error();
    EXPECT_FALSE(st->signaled);
    EXPECT_EQ(st->code, 127);
}

TEST(ShardReport, RoundTripsThroughTextAndDisk)
{
    TempDir dir("report");
    const std::vector<obs::ShardEntry> entries = {
        obs::ShardEntry{0, "ok", 1, 0, 1.25, ""},
        obs::ShardEntry{1, "ok", 3, 0, 4.5, ""},
        obs::ShardEntry{2, "failed", 4, -9,
                        0.125, "stalled; killed after 2.0s"},
    };
    const std::string path = dir.file("shards.report");
    ASSERT_TRUE(sweep::writeShardReportFile(path, entries).ok());
    const Expected<std::vector<obs::ShardEntry>> back =
        sweep::loadShardReportFile(path);
    ASSERT_TRUE(back.ok()) << back.error();
    ASSERT_EQ(back->size(), 3u);
    EXPECT_EQ((*back)[0].status, "ok");
    EXPECT_EQ((*back)[1].attempts, 3u);
    EXPECT_EQ((*back)[2].exitCode, -9);
    EXPECT_EQ((*back)[2].detail, "stalled; killed after 2.0s");
    EXPECT_DOUBLE_EQ((*back)[2].wallSeconds, 0.125);
}

TEST(ShardReport, MalformedInputRejected)
{
    for (const char *bad : {
             "",                                  // no header
             "wrong-header v1\n",                 // bad header
             "aegis-shard-report v2\n",           // bad version
             "aegis-shard-report v1\nshard\n",    // short line
             "aegis-shard-report v1\nshard x ok 1 0 0.5\n", // bad int
             "aegis-shard-report v1\nshard 0 maybe 1 0 0.5\n",
         }) {
        const Expected<std::vector<obs::ShardEntry>> r =
            sweep::decodeShardReport(bad, "r.txt");
        EXPECT_FALSE(r.ok()) << "accepted: " << bad;
        if (!r.ok())
            EXPECT_NE(r.error().find("r.txt"), std::string::npos)
                << r.error();
    }
}

TEST(SupervisorConfig, ParseShardChaos)
{
    const std::map<std::uint32_t, std::string> chaos =
        sweep::parseShardChaos(
            "1=kill-after-chunks=3;2=hang-after-chunks=2,io-fail-rate=0.5",
            4);
    ASSERT_EQ(chaos.size(), 2u);
    EXPECT_EQ(chaos.at(1), "kill-after-chunks=3");
    EXPECT_EQ(chaos.at(2), "hang-after-chunks=2,io-fail-rate=0.5");
    EXPECT_TRUE(sweep::parseShardChaos("", 4).empty());

    EXPECT_THROW(sweep::parseShardChaos("4=kill-after-chunks=1", 4),
                 ConfigError); // shard out of range
    EXPECT_THROW(sweep::parseShardChaos("nonsense", 4), ConfigError);
    EXPECT_THROW(sweep::parseShardChaos("1=", 4), ConfigError);
}

TEST(ChaosSpec, HangAfterChunksParses)
{
    const ChaosConfig c = parseChaosSpec("hang-after-chunks=7");
    EXPECT_EQ(c.hangAfterChunks, 7u);
    EXPECT_TRUE(c.enabled());
    EXPECT_THROW(parseChaosSpec("hang-after-chunks=x"), ConfigError);
}

// ---------------------------------------------------------------------
// Merge

/** A toy study body identical across shards/golden runs. */
void
toyBody(sim::PageStudy &acc, std::size_t i)
{
    Rng rng(9000 + i);
    acc.pageLifetime.add(1e3 * static_cast<double>(i) +
                         rng.nextDouble());
    acc.survival.addDeath(static_cast<double>(i + 1));
    acc.metrics.counters[0] += 1;
}

constexpr std::size_t kToyItems = 64;
constexpr std::size_t kToyGrain = 4; // 16 chunks
constexpr std::uint64_t kToyFingerprint = 0x5eed;

/** Run the toy unit under @p shard, writing @p path. */
void
runShardWorker(const std::string &path, sim::ShardSpec shard)
{
    sim::CheckpointSession session(path, "toy", 7, 42, shard);
    session.setSnapshotEveryChunks(1);
    sim::ScopedRunContext scoped(
        sim::RunContext{&session, nullptr, shard, false});
    (void)sim::runStudyUnit<sim::PageStudy>(
        kToyItems, 2, sim::StudyKind::Page, kToyFingerprint, toyBody,
        kToyGrain);
}

TEST(Merge, ShardsReassembleAndResumeBitIdentical)
{
    const sim::PageStudy golden = sim::runStudyUnit<sim::PageStudy>(
        kToyItems, 1, sim::StudyKind::Page, kToyFingerprint, toyBody,
        kToyGrain);

    TempDir dir("merge_e2e");
    std::vector<std::string> paths;
    const std::uint32_t N = 3;
    for (std::uint32_t i = 0; i < N; ++i) {
        paths.push_back(dir.file("shard_" + std::to_string(i) +
                                 ".ckpt"));
        runShardWorker(paths.back(), sim::ShardSpec{i, N});
    }

    sweep::MergeReport report;
    const Expected<sim::CheckpointData> merged =
        sweep::mergeShardCheckpoints(paths, sweep::MergeOptions{},
                                     &report);
    ASSERT_TRUE(merged.ok()) << merged.error();
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.shardFiles, 3u);
    EXPECT_EQ(report.units, 1u);
    EXPECT_EQ(report.chunks, 16u);
    EXPECT_EQ(merged->shardIndex, 0u);
    EXPECT_EQ(merged->shardCount, 1u);
    ASSERT_EQ(merged->partials.size(), 1u);
    ASSERT_EQ(merged->partials[0].chunks.size(), 16u);
    for (std::uint32_t c = 0; c < 16; ++c)
        EXPECT_EQ(merged->partials[0].chunks[c].index, c);

    // Resuming the merged checkpoint restores every chunk — nothing
    // recomputes — and reproduces the single-process study bit for
    // bit.
    const std::string mergedPath = dir.file("merged.ckpt");
    ASSERT_TRUE(
        atomicWriteFile(mergedPath, sim::encodeCheckpoint(*merged))
            .ok());
    sim::CheckpointSession session(mergedPath, "toy", 7, 42);
    ASSERT_TRUE(session.resume().ok());
    std::atomic<bool> executed{false};
    sim::ScopedRunContext scoped(sim::RunContext{&session, nullptr});
    const sim::PageStudy restored = sim::runStudyUnit<sim::PageStudy>(
        kToyItems, 4, sim::StudyKind::Page, kToyFingerprint,
        [&](sim::PageStudy &, std::size_t) { executed = true; },
        kToyGrain);
    EXPECT_FALSE(executed.load());
    EXPECT_EQ(session.skippedChunks(), 0u);

    BinaryWriter wg, wr;
    serializeStudy(golden, wg);
    serializeStudy(restored, wr);
    EXPECT_EQ(wr.data(), wg.data())
        << "merged sharded sweep diverged from single-process run";
}

TEST(Merge, SingleShardPassthrough)
{
    TempDir dir("merge_single");
    const std::string path = dir.file("only.ckpt");
    runShardWorker(path, sim::ShardSpec{}); // 0/1: plain run
    const Expected<sim::CheckpointData> merged =
        sweep::mergeShardCheckpoints({path}, sweep::MergeOptions{});
    ASSERT_TRUE(merged.ok()) << merged.error();
    // An unsharded worker completes its unit outright.
    EXPECT_EQ(merged->completed.size(), 1u);
}

TEST(Merge, MismatchedIdentityRejected)
{
    TempDir dir("merge_stale");
    const std::string a = dir.file("a.ckpt");
    const std::string b = dir.file("b.ckpt");
    runShardWorker(a, sim::ShardSpec{0, 2});
    {
        // Same shard layout, different master seed: a stale artifact.
        sim::CheckpointSession session(b, "toy", 7, 43,
                                       sim::ShardSpec{1, 2});
        sim::ScopedRunContext scoped(sim::RunContext{
            &session, nullptr, sim::ShardSpec{1, 2}, false});
        (void)sim::runStudyUnit<sim::PageStudy>(
            kToyItems, 1, sim::StudyKind::Page, kToyFingerprint,
            toyBody, kToyGrain);
    }
    const Expected<sim::CheckpointData> r =
        sweep::mergeShardCheckpoints({a, b}, sweep::MergeOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("stale"), std::string::npos) << r.error();
}

TEST(Merge, DuplicateShardIndexRejected)
{
    TempDir dir("merge_dup");
    const std::string a = dir.file("a.ckpt");
    const std::string b = dir.file("b.ckpt");
    runShardWorker(a, sim::ShardSpec{0, 2});
    runShardWorker(b, sim::ShardSpec{0, 2});
    const Expected<sim::CheckpointData> r =
        sweep::mergeShardCheckpoints({a, b}, sweep::MergeOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("claim shard"), std::string::npos)
        << r.error();
}

TEST(Merge, CrossWiredChunkRejected)
{
    // A checkpoint claiming shard 1/2 but holding shard 0's chunks is
    // cross-wired (renamed file, copy-paste accident): reject.
    TempDir dir("merge_cross");
    const std::string a = dir.file("a.ckpt");
    runShardWorker(a, sim::ShardSpec{0, 2});
    Expected<sim::CheckpointData> data = sim::loadCheckpointFile(a);
    ASSERT_TRUE(data.ok()) << data.error();
    data->shardIndex = 1; // lie about provenance
    const std::string b = dir.file("b.ckpt");
    ASSERT_TRUE(
        atomicWriteFile(b, sim::encodeCheckpoint(*data)).ok());

    const std::string c = dir.file("c.ckpt");
    runShardWorker(c, sim::ShardSpec{0, 2});
    const Expected<sim::CheckpointData> r =
        sweep::mergeShardCheckpoints({c, b}, sweep::MergeOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("cross-wired"), std::string::npos)
        << r.error();
}

TEST(Merge, MissingShardFailsStrictlyButDegradesWhenAllowed)
{
    TempDir dir("merge_missing");
    std::vector<std::string> paths;
    for (std::uint32_t i = 0; i < 2; ++i) { // shards 0,1 of 3
        paths.push_back(dir.file("s" + std::to_string(i) + ".ckpt"));
        runShardWorker(paths.back(), sim::ShardSpec{i, 3});
    }

    const Expected<sim::CheckpointData> strict =
        sweep::mergeShardCheckpoints(paths, sweep::MergeOptions{});
    ASSERT_FALSE(strict.ok());

    sweep::MergeReport report;
    const Expected<sim::CheckpointData> degraded =
        sweep::mergeShardCheckpoints(paths,
                                     sweep::MergeOptions{true},
                                     &report);
    ASSERT_TRUE(degraded.ok()) << degraded.error();
    EXPECT_FALSE(report.complete());
    EXPECT_GT(report.missingChunks, 0u);

    // A degraded finalize restores what survived, recomputes nothing,
    // and accounts the gap so the manifest can say "partial".
    const std::string mergedPath = dir.file("merged.ckpt");
    ASSERT_TRUE(atomicWriteFile(mergedPath,
                                sim::encodeCheckpoint(*degraded))
                    .ok());
    sim::CheckpointSession session(mergedPath, "toy", 7, 42);
    ASSERT_TRUE(session.resume().ok());
    std::atomic<bool> executed{false};
    sim::ScopedRunContext scoped(sim::RunContext{
        &session, nullptr, sim::ShardSpec{}, /*restoreOnly=*/true});
    const sim::PageStudy partial = sim::runStudyUnit<sim::PageStudy>(
        kToyItems, 1, sim::StudyKind::Page, kToyFingerprint,
        [&](sim::PageStudy &, std::size_t) { executed = true; },
        kToyGrain);
    EXPECT_FALSE(executed.load());
    EXPECT_GT(session.skippedChunks(), 0u);
    EXPECT_LT(partial.pageLifetime.count(), kToyItems);
    EXPECT_GT(partial.pageLifetime.count(), 0u);
}

TEST(Merge, UnreadableInputRejectedUnlessAllowed)
{
    TempDir dir("merge_unreadable");
    const std::string good = dir.file("good.ckpt");
    runShardWorker(good, sim::ShardSpec{0, 2});
    const std::string bad = dir.file("bad.ckpt");
    ASSERT_TRUE(atomicWriteFile(bad, "garbage, not a checkpoint").ok());

    const Expected<sim::CheckpointData> strict =
        sweep::mergeShardCheckpoints({good, bad},
                                     sweep::MergeOptions{});
    ASSERT_FALSE(strict.ok());
    EXPECT_NE(strict.error().find("bad.ckpt"), std::string::npos)
        << strict.error();

    sweep::MergeReport report;
    const Expected<sim::CheckpointData> degraded =
        sweep::mergeShardCheckpoints({good, bad},
                                     sweep::MergeOptions{true},
                                     &report);
    ASSERT_TRUE(degraded.ok()) << degraded.error();
    EXPECT_FALSE(report.warnings.empty());
    EXPECT_FALSE(report.complete());
}

TEST(Merge, NoUsableInputFails)
{
    const Expected<sim::CheckpointData> r = sweep::mergeShardCheckpoints(
        {"/nonexistent-dir/a.ckpt"}, sweep::MergeOptions{true});
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace aegis
