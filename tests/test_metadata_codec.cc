/**
 * @file
 * Metadata round-trip tests: the packed image must fit the advertised
 * bit budget and restore full scheme state — a fresh scheme instance
 * that imports the image must decode the block identically and keep
 * servicing writes.
 *
 * This is the proof that the Table-1 bit counts are *sufficient*, not
 * just an accounting convention.
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "pcm/fail_cache.h"
#include "util/bit_io.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

TEST(BitIo, RoundTripFields)
{
    BitWriter w(21);
    w.writeBits(0b10110, 5);
    w.writeBit(true);
    w.writeBits(1234, 11);
    w.writeBits(0xF, 4);
    const BitVector image = w.finish();
    ASSERT_EQ(image.size(), 21u);

    BitReader r(image);
    EXPECT_EQ(r.readBits(5), 0b10110u);
    EXPECT_TRUE(r.readBit());
    EXPECT_EQ(r.readBits(11), 1234u);
    EXPECT_EQ(r.readBits(4), 0xFu);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitIo, VectorFields)
{
    Rng rng(1);
    const BitVector payload = BitVector::random(37, rng);
    BitWriter w(40);
    w.writeBits(5, 3);
    w.writeVector(payload);
    const BitVector image = w.finish();

    BitReader r(image);
    EXPECT_EQ(r.readBits(3), 5u);
    EXPECT_EQ(r.readVector(37), payload);
}

TEST(BitIo, OverflowAndUnderflowAreCaught)
{
    BitWriter w(4);
    w.writeBits(3, 2);
    EXPECT_THROW(w.writeBits(0, 3), InternalError);
    EXPECT_THROW(w.finish(), InternalError);    // not full

    BitVector image(4);
    BitReader r(image);
    (void)r.readBits(3);
    EXPECT_THROW(r.readBits(2), ConfigError);
}

struct CodecCase
{
    const char *name;
    std::size_t blockBits;
};

class MetadataRoundTrip : public ::testing::TestWithParam<CodecCase>
{};

TEST_P(MetadataRoundTrip, ImageRestoresFullState)
{
    const auto &param = GetParam();
    Rng rng(std::string(param.name).size() * 31 + param.blockBits);

    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    auto original = core::makeScheme(param.name, param.blockBits);
    original->attachDirectory(dir.get(), 7);
    pcm::CellArray cells(param.blockBits);

    // Exercise the scheme: a few faults and writes so the metadata is
    // non-trivial (inversions, slope changes, pointers, entries).
    BitVector last(param.blockBits);
    for (int f = 0; f < 3; ++f) {
        // One fault per 64-bit word so the ECC baseline stays within
        // its per-word guarantee too.
        const auto pos = static_cast<std::uint32_t>(
            f * 64 + rng.nextBounded(64));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(7, {pos, stuck});
        last = BitVector::random(param.blockBits, rng);
        ASSERT_TRUE(original->write(cells, last).ok);
    }
    ASSERT_EQ(original->read(cells), last);

    // Pack, then restore into a *fresh* instance.
    const BitVector image = original->exportMetadata();
    EXPECT_EQ(image.size(), original->metadataBits());

    auto restored = core::makeScheme(param.name, param.blockBits);
    restored->attachDirectory(dir.get(), 7);
    restored->importMetadata(image);

    // The restored scheme decodes the same data...
    EXPECT_EQ(restored->read(cells), last) << param.name;
    // ...exports an identical image...
    EXPECT_EQ(restored->exportMetadata(), image);
    // ...and keeps servicing writes.
    const BitVector next = BitVector::random(param.blockBits, rng);
    ASSERT_TRUE(restored->write(cells, next).ok);
    EXPECT_EQ(restored->read(cells), next);
}

TEST_P(MetadataRoundTrip, BudgetMatchesCostModel)
{
    const auto &param = GetParam();
    auto scheme = core::makeScheme(param.name, param.blockBits);
    const std::string name = scheme->name();
    if (name.rfind("ecp", 0) == 0 ||
        name.rfind("aegis-rw-p", 0) == 0) {
        // Documented exceptions: explicit entry counter / full-width
        // slope counter cost a few bits over the Table-1 accounting.
        EXPECT_LE(scheme->metadataBits(),
                  scheme->overheadBits() + 4) << name;
    } else {
        EXPECT_EQ(scheme->metadataBits(), scheme->overheadBits())
            << name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MetadataRoundTrip,
    ::testing::Values(CodecCase{"ecp6", 512},
                      CodecCase{"safer32", 512},
                      CodecCase{"safer16-cache", 256},
                      CodecCase{"rdis3", 512},
                      CodecCase{"hamming", 256},
                      CodecCase{"aegis-23x23", 512},
                      CodecCase{"aegis-9x61", 512},
                      CodecCase{"aegis-12x23", 256},
                      CodecCase{"aegis-rw-23x23", 512},
                      CodecCase{"aegis-rw-p4-23x23", 512}),
    [](const ::testing::TestParamInfo<CodecCase> &info) {
        std::string n = info.param.name;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::to_string(info.param.blockBits);
    });

TEST(MetadataCodec, CorruptImagesAreRejected)
{
    auto aegis = core::makeScheme("aegis-23x23", 512);
    BitVector wrong_width(10);
    EXPECT_THROW(aegis->importMetadata(wrong_width), ConfigError);

    // A slope counter beyond B must be rejected.
    BitVector bad(aegis->metadataBits());
    for (std::size_t i = 0; i < 5; ++i)
        bad.set(i, true);    // counter = 31 >= B = 23
    EXPECT_THROW(aegis->importMetadata(bad), ConfigError);

    auto safer = core::makeScheme("safer32", 512);
    BitVector bad_safer(safer->metadataBits());
    bad_safer.set(0, true);
    bad_safer.set(1, true);
    bad_safer.set(2, true);    // used-field counter = 7 > k = 5
    EXPECT_THROW(safer->importMetadata(bad_safer), ConfigError);
}

TEST(MetadataCodec, NoneHasEmptyImage)
{
    auto none = core::makeScheme("none", 512);
    EXPECT_EQ(none->metadataBits(), 0u);
    EXPECT_TRUE(none->exportMetadata().empty());
    none->importMetadata(BitVector());
}

} // namespace
} // namespace aegis
