/**
 * @file
 * Unit tests for util/bit_vector.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/bit_vector.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

TEST(BitVector, DefaultIsEmpty)
{
    BitVector v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructZeroed)
{
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_TRUE(v.none());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(v.get(i));
}

TEST(BitVector, ConstructFilled)
{
    BitVector v(70, true);
    EXPECT_EQ(v.popcount(), 70u);
    EXPECT_TRUE(v.any());
}

TEST(BitVector, SetGetFlip)
{
    BitVector v(65);
    v.set(0, true);
    v.set(64, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_FALSE(v.get(32));
    v.flip(64);
    EXPECT_FALSE(v.get(64));
    v.flip(32);
    EXPECT_TRUE(v.get(32));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, FillAndInvert)
{
    BitVector v(67);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 67u);
    v.invert();
    EXPECT_EQ(v.popcount(), 0u);
    v.set(3, true);
    v.invert();
    EXPECT_EQ(v.popcount(), 66u);
    EXPECT_FALSE(v.get(3));
}

TEST(BitVector, TailBitsStayMasked)
{
    // Operations on a non-word-multiple size must not leak set bits
    // beyond size() (popcount would be wrong otherwise).
    BitVector v(3, true);
    v.invert();
    v.fill(true);
    EXPECT_EQ(v.popcount(), 3u);
    BitVector w = ~v;
    EXPECT_EQ(w.popcount(), 0u);
}

TEST(BitVector, SetBitsAndFirstSetBit)
{
    BitVector v(130);
    EXPECT_EQ(v.firstSetBit(), 130u);
    v.set(5, true);
    v.set(64, true);
    v.set(129, true);
    const auto bits = v.setBits();
    ASSERT_EQ(bits.size(), 3u);
    EXPECT_EQ(bits[0], 5u);
    EXPECT_EQ(bits[1], 64u);
    EXPECT_EQ(bits[2], 129u);
    EXPECT_EQ(v.firstSetBit(), 5u);
}

TEST(BitVector, BitwiseOps)
{
    BitVector a = BitVector::fromString("1100");
    BitVector b = BitVector::fromString("1010");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((~a).toString(), "0011");
}

TEST(BitVector, EqualityAndHamming)
{
    BitVector a = BitVector::fromString("10110");
    BitVector b = BitVector::fromString("10011");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
    BitVector c = a;
    EXPECT_EQ(a, c);
}

TEST(BitVector, FromStringRejectsJunk)
{
    EXPECT_THROW(BitVector::fromString("10a1"), ConfigError);
}

TEST(BitVector, RoundTripString)
{
    const std::string s = "101100111000101";
    EXPECT_EQ(BitVector::fromString(s).toString(), s);
}

TEST(BitVector, RandomizeIsDeterministicPerSeed)
{
    Rng r1(42), r2(42), r3(43);
    const BitVector a = BitVector::random(512, r1);
    const BitVector b = BitVector::random(512, r2);
    const BitVector c = BitVector::random(512, r3);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // A fair 512-bit draw is essentially never all-zero/one and has
    // roughly half the bits set.
    EXPECT_GT(a.popcount(), 150u);
    EXPECT_LT(a.popcount(), 362u);
}

TEST(BitVector, WordPackingMatchesBitOrder)
{
    BitVector v(128);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    EXPECT_EQ(v.words()[0], (1ull << 63) | 1ull);
    EXPECT_EQ(v.words()[1], 1ull);
}

TEST(BitVector, SizeMismatchIsAnError)
{
    BitVector a(8), b(9);
    EXPECT_THROW(a ^= b, InternalError);
    EXPECT_THROW(a.hammingDistance(b), InternalError);
}

TEST(BitVector, OutOfRangeAccessThrows)
{
    BitVector v(8);
    EXPECT_THROW(v.get(8), InternalError);
    EXPECT_THROW(v.set(9, true), InternalError);
    EXPECT_THROW(v.flip(100), InternalError);
}

class BitVectorSizes : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BitVectorSizes, InvertTwiceIsIdentity)
{
    Rng rng(GetParam() * 7919 + 1);
    BitVector v = BitVector::random(GetParam(), rng);
    BitVector w = v;
    w.invert();
    EXPECT_EQ(v.hammingDistance(w), v.size());
    w.invert();
    EXPECT_EQ(v, w);
}

TEST_P(BitVectorSizes, XorWithSelfIsZero)
{
    Rng rng(GetParam() * 104729 + 3);
    BitVector v = BitVector::random(GetParam(), rng);
    EXPECT_TRUE((v ^ v).none());
}

TEST_P(BitVectorSizes, InPlaceOpsMatchPerBitReference)
{
    const std::size_t n = GetParam();
    Rng rng(n * 6151 + 5);
    const BitVector a = BitVector::random(n, rng);
    const BitVector b = BitVector::random(n, rng);

    BitVector v = a;
    v.xorAssign(b);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(v.get(i), a.get(i) != b.get(i)) << i;

    v = a;
    v.orAssign(b);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(v.get(i), a.get(i) || b.get(i)) << i;

    v = a;
    v.andAssign(b);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(v.get(i), a.get(i) && b.get(i)) << i;

    v = a;
    v.andNotAssign(b);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(v.get(i), a.get(i) && !b.get(i)) << i;

    // invertMasked == XOR with the mask.
    v = a;
    v.invertMasked(b);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(v.get(i), b.get(i) ? !a.get(i) : a.get(i)) << i;
}

TEST_P(BitVectorSizes, XorAssignAndNotMatchesPerBitReference)
{
    const std::size_t n = GetParam();
    Rng rng(n * 12289 + 7);
    const BitVector a = BitVector::random(n, rng);
    const BitVector value = BitVector::random(n, rng);
    const BitVector mask = BitVector::random(n, rng);

    BitVector v = a;
    v.xorAssignAndNot(value, mask);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(v.get(i),
                  a.get(i) != (value.get(i) && !mask.get(i)))
            << i;
    }
}

TEST_P(BitVectorSizes, AssignSelectMatchesPerBitReference)
{
    const std::size_t n = GetParam();
    Rng rng(n * 24593 + 11);
    const BitVector base = BitVector::random(n, rng);
    const BitVector chosen = BitVector::random(n, rng);
    const BitVector mask = BitVector::random(n, rng);

    BitVector out;    // deliberately unsized: assignSelect resizes
    out.assignSelect(base, chosen, mask);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out.get(i),
                  mask.get(i) ? chosen.get(i) : base.get(i))
            << i;
    }
}

TEST_P(BitVectorSizes, AssignFromEqualsAndFirstMismatch)
{
    const std::size_t n = GetParam();
    Rng rng(n * 49157 + 13);
    const BitVector a = BitVector::random(n, rng);

    BitVector copy;
    copy.assignFrom(a);
    EXPECT_TRUE(copy.equals(a));
    EXPECT_EQ(copy.firstMismatch(a), n);

    // Flip one bit: firstMismatch must name exactly it.
    const std::size_t where = rng.nextBounded(n);
    copy.flip(where);
    EXPECT_FALSE(copy.equals(a));
    EXPECT_EQ(copy.firstMismatch(a), where);
    EXPECT_EQ(a.firstMismatch(copy), where);
}

TEST_P(BitVectorSizes, ForEachSetBitVisitsSetBitsAscending)
{
    const std::size_t n = GetParam();
    Rng rng(n * 786433 + 17);
    const BitVector v = BitVector::random(n, rng);

    std::vector<std::size_t> visited;
    v.forEachSetBit([&visited](std::size_t i) { visited.push_back(i); });
    const auto expected = v.setBits();
    ASSERT_EQ(visited.size(), expected.size());
    for (std::size_t i = 0; i < visited.size(); ++i)
        ASSERT_EQ(visited[i], expected[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizes,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128,
                                           256, 511, 512));

} // namespace
} // namespace aegis
