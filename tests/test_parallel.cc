/**
 * @file
 * Tests for the chunked parallel-for utility and the determinism
 * guarantee of the parallel Monte-Carlo engine: any --jobs value must
 * produce bit-identical studies.
 */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/workload.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace aegis {
namespace {

TEST(ParallelFor, ResolvesJobs)
{
    EXPECT_GE(hardwareJobs(), 1u);
    EXPECT_EQ(resolveJobs(0), hardwareJobs());
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ParallelFor, RunsEveryChunkExactlyOnce)
{
    constexpr std::size_t chunks = 57;
    std::vector<std::atomic<int>> hits(chunks);
    parallelFor(chunks, 8, [&](std::size_t c) { ++hits[c]; });
    for (std::size_t c = 0; c < chunks; ++c)
        EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
}

TEST(ParallelFor, SingleJobRunsInOrderOnCallingThread)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t c) { order.push_back(c); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    bool ran = false;
    parallelFor(0, 4, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelFor(16, jobs, [](std::size_t c) {
                if (c == 3)
                    throw std::runtime_error("chunk 3 exploded");
            });
            FAIL() << "exception swallowed at jobs=" << jobs;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "chunk 3 exploded");
        }
    }
}

TEST(ParallelReduce, MatchesSerialSumForAnyJobs)
{
    constexpr std::size_t items = 1000;
    const auto body = [](RunningStat &acc, std::size_t i) {
        acc.add(0.5 * static_cast<double>(i) + 1.0);
    };
    const RunningStat one = parallelReduce<RunningStat>(items, 1, body);
    for (unsigned jobs : {2u, 3u, 8u, 64u}) {
        const RunningStat many =
            parallelReduce<RunningStat>(items, jobs, body);
        EXPECT_EQ(many.count(), one.count());
        // Bit-identical, not just close: same chunk grid, same
        // merge order.
        EXPECT_EQ(many.mean(), one.mean());
        EXPECT_EQ(many.variance(), one.variance());
        EXPECT_EQ(many.sum(), one.sum());
        EXPECT_EQ(many.min(), one.min());
        EXPECT_EQ(many.max(), one.max());
    }
    EXPECT_EQ(one.count(), items);
    EXPECT_DOUBLE_EQ(one.max(), 0.5 * (items - 1) + 1.0);
}

TEST(ParallelReduce, GrainDoesNotChangeMembership)
{
    // Different grains regroup the arithmetic but must cover exactly
    // the same items.
    for (std::size_t grain : {1ul, 7ul, 16ul, 1000ul}) {
        const RunningStat s = parallelReduce<RunningStat>(
            100, 4,
            [](RunningStat &acc, std::size_t i) {
                acc.add(static_cast<double>(i));
            },
            grain);
        EXPECT_EQ(s.count(), 100u) << "grain " << grain;
        EXPECT_DOUBLE_EQ(s.sum(), 4950.0) << "grain " << grain;
    }
}

/** Small fast config shared by the study determinism tests. */
sim::ExperimentConfig
smallConfig(const std::string &scheme)
{
    sim::ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.pages = 48;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;
    return cfg;
}

TEST(ParallelExperiment, PageStudyIsJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("aegis-23x23");
    cfg.jobs = 1;
    const sim::PageStudy serial = sim::runPageStudy(cfg);
    cfg.jobs = 8;
    const sim::PageStudy parallel = sim::runPageStudy(cfg);

    EXPECT_EQ(parallel.scheme, serial.scheme);
    EXPECT_EQ(parallel.overheadBits, serial.overheadBits);
    EXPECT_EQ(parallel.blockBits, serial.blockBits);
    EXPECT_EQ(parallel.recoverableFaults.count(),
              serial.recoverableFaults.count());
    EXPECT_EQ(parallel.recoverableFaults.mean(),
              serial.recoverableFaults.mean());
    EXPECT_EQ(parallel.pageLifetime.mean(), serial.pageLifetime.mean());
    EXPECT_EQ(parallel.pageLifetime.variance(),
              serial.pageLifetime.variance());
    EXPECT_EQ(parallel.pageLifetime.sum(), serial.pageLifetime.sum());
    EXPECT_EQ(parallel.repartitions.mean(), serial.repartitions.mean());
    EXPECT_EQ(parallel.survival.population(),
              serial.survival.population());
    EXPECT_EQ(parallel.survival.timeToFraction(0.5),
              serial.survival.timeToFraction(0.5));
    EXPECT_EQ(parallel.survival.sample(16), serial.survival.sample(16));
}

TEST(ParallelExperiment, BlockStudyIsJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("ecp6");
    cfg.jobs = 1;
    const sim::BlockStudy serial = sim::runBlockStudy(cfg, 96);
    cfg.jobs = 5;
    const sim::BlockStudy parallel = sim::runBlockStudy(cfg, 96);

    EXPECT_EQ(parallel.scheme, serial.scheme);
    EXPECT_EQ(parallel.blockBits, serial.blockBits);
    EXPECT_EQ(parallel.blockLifetime.count(),
              serial.blockLifetime.count());
    EXPECT_EQ(parallel.blockLifetime.mean(),
              serial.blockLifetime.mean());
    EXPECT_EQ(parallel.faultsAtDeath.items(),
              serial.faultsAtDeath.items());
}

TEST(ParallelExperiment, MemorySurvivalIsJobsInvariant)
{
    sim::ExperimentConfig cfg = smallConfig("safer32");
    const sim::ZipfWorkload zipf(0.8);
    cfg.jobs = 1;
    const SurvivalCurve serial = sim::runMemorySurvival(cfg, zipf);
    cfg.jobs = 6;
    const SurvivalCurve parallel = sim::runMemorySurvival(cfg, zipf);

    EXPECT_EQ(parallel.population(), serial.population());
    EXPECT_EQ(parallel.sample(16), serial.sample(16));
}

TEST(ParallelExperiment, DefaultJobsMatchesExplicitJobsOne)
{
    // jobs = 0 (hardware concurrency) must also be bit-identical.
    sim::ExperimentConfig cfg = smallConfig("aegis-9x61");
    cfg.pages = 24;
    cfg.jobs = 0;
    const sim::PageStudy automatic = sim::runPageStudy(cfg);
    cfg.jobs = 1;
    const sim::PageStudy serial = sim::runPageStudy(cfg);
    EXPECT_EQ(automatic.pageLifetime.mean(),
              serial.pageLifetime.mean());
    EXPECT_EQ(automatic.recoverableFaults.mean(),
              serial.recoverableFaults.mean());
}

TEST(ParallelExperiment, MergeOfSplitsEqualsSinglePass)
{
    // Two disjoint half-populations merged == the full population,
    // page-for-page (the same master seed streams).
    sim::ExperimentConfig cfg = smallConfig("aegis-17x31");
    const sim::PageStudy whole = sim::runPageStudy(cfg);

    // Re-run with the same config but fold the chunk results through
    // PageStudy::merge by hand at a different split point.
    sim::PageStudy lo = whole;
    sim::PageStudy hi;
    hi.merge(lo);    // adopt into an empty study
    EXPECT_EQ(hi.scheme, whole.scheme);
    EXPECT_EQ(hi.pageLifetime.count(), whole.pageLifetime.count());
    EXPECT_EQ(hi.pageLifetime.mean(), whole.pageLifetime.mean());
    EXPECT_EQ(hi.survival.population(), whole.survival.population());
}

} // namespace
} // namespace aegis
