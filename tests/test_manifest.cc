/**
 * @file
 * Tests for JSON emission and the schema-versioned run manifest: a
 * golden-file check pins the manifest format (bump kSchemaVersion and
 * regenerate on any breaking change), plus JsonWriter escaping and
 * number-formatting unit tests.
 */

#include <array>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/manifest.h"
#include "util/error.h"
#include "util/table_printer.h"

namespace aegis {
namespace {

TEST(Json, QuoteEscapes)
{
    EXPECT_EQ(obs::JsonWriter::quote("plain"), "\"plain\"");
    EXPECT_EQ(obs::JsonWriter::quote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::JsonWriter::quote("back\\slash"),
              "\"back\\\\slash\"");
    EXPECT_EQ(obs::JsonWriter::quote("line\nbreak\ttab"),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(obs::JsonWriter::quote(std::string_view("\x01", 1)),
              "\"\\u0001\"");
}

TEST(Json, NumberFormatting)
{
    // Integral doubles keep a trailing ".0" so the JSON type is
    // unambiguous; non-finite values become null.
    EXPECT_EQ(obs::JsonWriter::number(2.0), "2.0");
    EXPECT_EQ(obs::JsonWriter::number(2.5), "2.5");
    EXPECT_EQ(obs::JsonWriter::number(0.0), "0.0");
    EXPECT_EQ(obs::JsonWriter::number(std::nan("")), "null");
    EXPECT_EQ(obs::JsonWriter::number(INFINITY), "null");
    // Shortest round-trip formatting.
    EXPECT_EQ(obs::JsonWriter::number(0.1), "0.1");
}

TEST(Json, WriterStructure)
{
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    w.beginObject();
    w.key("answer").value(std::uint64_t{42});
    w.key("items").beginArray().value("a").value("b").endArray();
    w.key("neg").value(std::int64_t{-3});
    w.key("flag").value(true);
    w.key("nothing").value(obs::JsonValue::null());
    w.endObject();
    // indent width 0: structure newlines remain, no leading spaces.
    EXPECT_EQ(os.str(), "{\n\"answer\": 42,\n\"items\": [\n\"a\",\n"
                        "\"b\"\n],\n\"neg\": -3,\n\"flag\": true,\n"
                        "\"nothing\": null\n}");
}

TEST(Manifest, GoldenFixture)
{
    obs::Manifest m("demo_bench", "golden manifest fixture");
    m.setBuildInfo(
        obs::BuildInfo{"deadbeef", "Release", "testc++ 1.0", "-O2"});
    m.setTimestampUtc("2026-01-02T03:04:05Z");
    m.setSeed(42);
    m.addFlag("pages", obs::JsonValue::uint(64));
    m.addFlag("csv", obs::JsonValue::boolean(false));
    m.addFlag("scheme", obs::JsonValue::str("aegis-9x61"));
    m.addFlag("mean", obs::JsonValue::real(2.5));
    obs::JsonObject cfg;
    cfg.emplace_back("scheme", obs::JsonValue::str("aegis-9x61"));
    cfg.emplace_back("blockBits", obs::JsonValue::uint(512));
    m.addConfig(cfg);
    m.addConfig(cfg);    // exact duplicate: recorded once
    m.addPhase("warmup", 0.25);
    m.addPhase("sweep", 1.5);
    obs::Metrics metrics;
    metrics.counters[0] = 17;
    metrics.gauges[0] = 3;
    metrics.timers[0] = obs::TimingStat{2, 100, 75};
    m.setMetrics(metrics);
    std::array<obs::ScopeQuantiles, obs::kScopeCount> quantiles{};
    quantiles[0] = obs::ScopeQuantiles{63, 127, 127};
    m.setTimerQuantiles(quantiles);
    obs::TimeSeries series;
    series.name = "demo.controller";
    series.columns = {"tick", "writes"};
    series.rows = {{2000, 17}, {4000, 34}};
    m.addTimeSeries(std::move(series));
    TablePrinter t("Demo table");
    t.setHeader({"scheme", "bits"});
    t.addRow({"aegis-9x61", "67"});
    m.addTable(t);

    const std::string golden = R"json({
  "schema": "aegis-bench-manifest",
  "schemaVersion": 5,
  "program": "demo_bench",
  "description": "golden manifest fixture",
  "status": "complete",
  "timestampUtc": "2026-01-02T03:04:05Z",
  "build": {
    "gitSha": "deadbeef",
    "buildType": "Release",
    "compiler": "testc++ 1.0",
    "flags": "-O2"
  },
  "seed": 42,
  "flags": {
    "pages": 64,
    "csv": false,
    "scheme": "aegis-9x61",
    "mean": 2.5
  },
  "configs": [
    {
      "scheme": "aegis-9x61",
      "blockBits": 512
    }
  ],
  "phases": [
    {
      "name": "warmup",
      "seconds": 0.25
    },
    {
      "name": "sweep",
      "seconds": 1.5
    }
  ],
  "metrics": {
    "counters": {
      "scheme.group_inversions": 17,
      "scheme.program_passes": 0,
      "scheme.verify_mismatches": 0,
      "aegis.slope_repartitions": 0,
      "safer.repartitions": 0,
      "rdis.solves": 0,
      "rdis.recursion_levels": 0,
      "ecp.pointers_consumed": 0,
      "failcache.hits": 0,
      "failcache.misses": 0,
      "failcache.insertions": 0,
      "failcache.evictions": 0,
      "pcm.diff_writes": 0,
      "pcm.diff_bits_flipped": 0,
      "pcm.blind_writes": 0,
      "tracker.labelings_sampled": 0,
      "sim.fault_arrivals": 0,
      "sim.block_lives": 0,
      "sim.page_lives": 0,
      "audit.checks": 0,
      "audit.violations": 0,
      "timing.reads": 0,
      "timing.writes": 0,
      "timing.verify_reads": 0,
      "timing.failcache_lookups": 0,
      "timing.failcache_updates": 0,
      "timing.repartition_stalls": 0
    },
    "gauges": {
      "rdis.max_recursion_depth": 3
    },
    "timers": {
      "scheme.write": {
        "count": 2,
        "totalNs": 100,
        "maxNs": 75,
        "p50Ns": 63,
        "p95Ns": 127,
        "p99Ns": 127
      },
      "scheme.read": {
        "count": 0,
        "totalNs": 0,
        "maxNs": 0,
        "p50Ns": 0,
        "p95Ns": 0,
        "p99Ns": 0
      },
      "scheme.recover": {
        "count": 0,
        "totalNs": 0,
        "maxNs": 0,
        "p50Ns": 0,
        "p95Ns": 0,
        "p99Ns": 0
      },
      "sim.block_life": {
        "count": 0,
        "totalNs": 0,
        "maxNs": 0,
        "p50Ns": 0,
        "p95Ns": 0,
        "p99Ns": 0
      },
      "sim.page_life": {
        "count": 0,
        "totalNs": 0,
        "maxNs": 0,
        "p50Ns": 0,
        "p95Ns": 0,
        "p99Ns": 0
      }
    }
  },
  "tables": [
    {
      "title": "Demo table",
      "header": [
        "scheme",
        "bits"
      ],
      "rows": [
        [
          "aegis-9x61",
          "67"
        ]
      ]
    }
  ],
  "timeseries": [
    {
      "name": "demo.controller",
      "columns": [
        "tick",
        "writes"
      ],
      "rows": [
        [
          2000,
          17
        ],
        [
          4000,
          34
        ]
      ]
    }
  ],
  "shards": []
}
)json";
    EXPECT_EQ(m.toJson(), golden);
}

TEST(Manifest, ShardsSectionEmitted)
{
    obs::Manifest m("p", "d");
    m.setShards({obs::ShardEntry{0, "ok", 1, 0, 1.5, ""},
                 obs::ShardEntry{2, "failed", 3, 137,
                                 0.25, "retry budget exhausted"}});
    const std::string json = m.toJson();
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"exitCode\": 137"), std::string::npos);
    EXPECT_NE(json.find("\"detail\": \"retry budget exhausted\""),
              std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 3"), std::string::npos);
}

TEST(Manifest, PartialStatusRecorded)
{
    obs::Manifest m("p", "d");
    m.setStatus("partial");
    EXPECT_NE(m.toJson().find("\"status\": \"partial\""),
              std::string::npos);
}

TEST(Manifest, TableCellsCapturedVerbatim)
{
    obs::Manifest m("p", "d");
    TablePrinter t("T");
    t.setHeader({"h"});
    t.addRow({"weird \"cell\",\nwith junk"});
    m.addTable(t);
    const std::string json = m.toJson();
    EXPECT_NE(json.find("weird \\\"cell\\\",\\nwith junk"),
              std::string::npos)
        << json;
}

TEST(Manifest, WriteFileRejectsBadPath)
{
    const obs::Manifest m("p", "d");
    EXPECT_THROW(m.writeFile("/nonexistent-dir/x/manifest.json"),
                 ConfigError);
}

TEST(Manifest, DefaultBuildInfoPopulated)
{
    // The library was compiled without the bench-level provenance
    // macros, so the fallbacks apply; the fields still exist.
    const obs::BuildInfo info = obs::currentBuildInfo();
    EXPECT_FALSE(info.gitSha.empty());
    EXPECT_FALSE(info.compiler.empty());
}

} // namespace
} // namespace aegis
