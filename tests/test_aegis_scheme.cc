/**
 * @file
 * Unit and property tests for the basic Aegis scheme.
 */

#include <gtest/gtest.h>

#include "aegis/aegis_scheme.h"
#include "aegis/cost.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::core {
namespace {

TEST(Aegis, MetadataBasics)
{
    const AegisScheme aegis = AegisScheme::forHeight(61, 512);
    EXPECT_EQ(aegis.name(), "aegis-9x61");
    EXPECT_EQ(aegis.blockBits(), 512u);
    EXPECT_EQ(aegis.overheadBits(), 67u);    // 6-bit counter + 61 flags
    EXPECT_EQ(aegis.hardFtc(), 11u);
    EXPECT_FALSE(aegis.requiresDirectory());
}

TEST(Aegis, CleanRoundTrip)
{
    AegisScheme aegis = AegisScheme::forHeight(23, 512);
    pcm::CellArray cells(512);
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const BitVector data = BitVector::random(512, rng);
        const auto outcome = aegis.write(cells, data);
        EXPECT_TRUE(outcome.ok);
        EXPECT_EQ(outcome.programPasses, 1u);
        EXPECT_EQ(aegis.read(cells), data);
    }
    EXPECT_EQ(aegis.currentSlope(), 0u);
}

TEST(Aegis, MasksOneWrongFaultWithInversion)
{
    AegisScheme aegis(5, 7, 32);
    pcm::CellArray cells(32);
    cells.injectFault(10, true);
    const BitVector zeros(32);
    const auto outcome = aegis.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GE(outcome.programPasses, 2u);
    EXPECT_EQ(outcome.newFaults, 1u);
    EXPECT_EQ(aegis.read(cells), zeros);
    // The fault's group is flagged inverted.
    const std::uint32_t g =
        aegis.partition().groupOf(10, aegis.currentSlope());
    EXPECT_TRUE(aegis.inversionVector().get(g));
}

TEST(Aegis, RightFaultStaysInvisible)
{
    AegisScheme aegis(5, 7, 32);
    pcm::CellArray cells(32);
    cells.injectFault(10, true);
    BitVector data(32);
    data.set(10, true);    // stuck value equals the data
    const auto outcome = aegis.write(cells, data);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.programPasses, 1u);
    EXPECT_EQ(outcome.newFaults, 0u);
    EXPECT_EQ(aegis.read(cells), data);
}

TEST(Aegis, CollisionForcesRepartition)
{
    // Two faults in the same slope-0 group (same row) with opposite
    // needs force a slope change.
    const AegisScheme proto = AegisScheme::forHeight(23, 512);
    const Partition &part = proto.partition();
    AegisScheme aegis = proto;
    pcm::CellArray cells(512);

    // Same row, different columns => same group under slope 0.
    const std::uint32_t pos1 = 3;              // (0, 3)
    const std::uint32_t pos2 = 23 + 3;         // (1, 3)
    ASSERT_EQ(part.groupOf(pos1, 0), part.groupOf(pos2, 0));
    cells.injectFault(pos1, true);
    cells.injectFault(pos2, false);

    BitVector data(512);          // wants 0: pos1 Wrong, pos2 Right
    const auto outcome = aegis.write(cells, data);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GE(outcome.repartitions, 1u);
    EXPECT_NE(aegis.currentSlope(), 0u);
    EXPECT_EQ(aegis.read(cells), data);
}

class AegisFormations
    : public ::testing::TestWithParam<std::pair<std::uint32_t,
                                                std::uint32_t>>
{};

TEST_P(AegisFormations, HardFtcGuaranteeHolds)
{
    // Property: any hardFtc()-sized fault set with any stuck values
    // and any write data is tolerated.
    const auto &[b, n] = GetParam();
    const AegisScheme proto = AegisScheme::forHeight(b, n);
    const auto guarantee = proto.hardFtc();
    Rng rng(b * 1000 + n);

    for (int trial = 0; trial < 40; ++trial) {
        AegisScheme aegis = proto;
        pcm::CellArray cells(n);
        for (std::size_t f = 0; f < guarantee; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(n));
            } while (cells.isStuck(pos));
            cells.injectFault(pos, rng.nextBool());
            for (int w = 0; w < 3; ++w) {
                const BitVector data = BitVector::random(n, rng);
                ASSERT_TRUE(aegis.write(cells, data).ok)
                    << "trial " << trial << " fault " << f;
                ASSERT_EQ(aegis.read(cells), data);
            }
        }
    }
}

TEST_P(AegisFormations, SoftFtcUsuallyExceedsHardFtc)
{
    const auto &[b, n] = GetParam();
    const AegisScheme proto = AegisScheme::forHeight(b, n);
    Rng rng(b * 77 + n);
    std::size_t best = 0;
    for (int trial = 0; trial < 10; ++trial) {
        AegisScheme aegis = proto;
        pcm::CellArray cells(n);
        std::size_t survived = 0;
        for (std::size_t f = 0; f < n; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(n));
            } while (cells.isStuck(pos));
            cells.injectFault(pos, rng.nextBool());
            bool ok = true;
            for (int w = 0; w < 4 && ok; ++w)
                ok = aegis.write(cells, BitVector::random(n, rng)).ok;
            if (!ok)
                break;
            ++survived;
        }
        best = std::max(best, survived);
    }
    EXPECT_GT(best, proto.hardFtc());
}

INSTANTIATE_TEST_SUITE_P(
    Formations, AegisFormations,
    ::testing::Values(std::make_pair(23u, 512u),
                      std::make_pair(31u, 512u),
                      std::make_pair(61u, 512u),
                      std::make_pair(23u, 256u),
                      std::make_pair(31u, 256u),
                      std::make_pair(7u, 32u)));

TEST(Aegis, MetadataSurvivesAcrossWrites)
{
    // After many faulty writes the (slope, inversion vector) pair
    // must keep decoding whatever was last written.
    AegisScheme aegis = AegisScheme::forHeight(23, 256);
    pcm::CellArray cells(256);
    Rng rng(5);
    BitVector last(256);
    for (int step = 0; step < 60; ++step) {
        if (step % 5 == 0 && cells.faultCount() < 8) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(256));
            } while (cells.isStuck(pos));
            cells.injectFault(pos, rng.nextBool());
        }
        last = BitVector::random(256, rng);
        ASSERT_TRUE(aegis.write(cells, last).ok);
        ASSERT_EQ(aegis.read(cells), last);
    }
    EXPECT_EQ(aegis.read(cells), last);
}

TEST(Aegis, EventualFailureIsDetected)
{
    // Keep adding faults: the scheme must eventually report an
    // unrecoverable write rather than corrupt data silently.
    AegisScheme aegis(5, 7, 32);
    pcm::CellArray cells(32);
    Rng rng(7);
    bool failed = false;
    for (std::uint32_t f = 0; f < 32 && !failed; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(32));
        } while (cells.isStuck(pos));
        cells.injectFault(pos, rng.nextBool());
        for (int w = 0; w < 6; ++w) {
            const BitVector data = BitVector::random(32, rng);
            const auto outcome = aegis.write(cells, data);
            if (!outcome.ok) {
                failed = true;
                break;
            }
            ASSERT_EQ(aegis.read(cells), data);
        }
    }
    EXPECT_TRUE(failed);
}

TEST(Aegis, ResetClearsMetadata)
{
    AegisScheme aegis = AegisScheme::forHeight(23, 256);
    pcm::CellArray cells(256);
    cells.injectFault(5, true);
    ASSERT_TRUE(aegis.write(cells, BitVector(256)).ok);
    EXPECT_TRUE(aegis.inversionVector().any());
    aegis.reset();
    EXPECT_TRUE(aegis.inversionVector().none());
    EXPECT_EQ(aegis.currentSlope(), 0u);
}

} // namespace
} // namespace aegis::core
