/**
 * @file
 * Direct tests of the shared partition-and-inversion write driver
 * using two deliberately simple mock partitions:
 *  - XorPartition: group = (pos ^ mask) % 7 with the mask cycling on
 *    re-partition — collisions genuinely move between configurations;
 *  - RigidPartition: group = pos % 8 with no effective re-partition —
 *    congruent positions are unseparable, exercising the failure
 *    path.
 */

#include <gtest/gtest.h>

#include "scheme/inversion_driver.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::scheme {
namespace {

/** Groups by (pos ^ mask) % 7; re-partition cycles the mask. */
class XorPartition : public GroupPartition
{
  public:
    explicit XorPartition(std::size_t bits)
        : bits(bits)
    {}

    std::size_t groupCount() const override { return 7; }

    std::size_t groupOf(std::size_t pos) const override
    { return (pos ^ mask) % 7; }

    bool
    separate(const pcm::FaultSet &faults,
             std::uint32_t &repartitions) override
    {
        for (std::size_t trial = 0; trial < 8; ++trial) {
            if (separated(faults))
                return true;
            mask = (mask + 1) % 8;
            ++repartitions;
        }
        return separated(faults);
    }

    void resetConfig() override { mask = 0; }

    std::size_t currentMask() const { return mask; }

  private:
    bool
    separated(const pcm::FaultSet &faults) const
    {
        std::vector<bool> used(7, false);
        for (const pcm::Fault &f : faults) {
            const std::size_t g = groupOf(f.pos);
            if (used[g])
                return false;
            used[g] = true;
        }
        return true;
    }

    std::size_t bits;
    std::size_t mask = 0;
};

/** Groups rigidly by pos % 8; separate() only reports the truth. */
class RigidPartition : public GroupPartition
{
  public:
    std::size_t groupCount() const override { return 8; }

    std::size_t groupOf(std::size_t pos) const override
    { return pos % 8; }

    bool
    separate(const pcm::FaultSet &faults, std::uint32_t &) override
    {
        std::vector<bool> used(8, false);
        for (const pcm::Fault &f : faults) {
            if (used[f.pos % 8])
                return false;
            used[f.pos % 8] = true;
        }
        return true;
    }

    void resetConfig() override {}
};

TEST(InversionDriver, CleanWriteIsSinglePass)
{
    XorPartition part(32);
    pcm::CellArray cells(32);
    BitVector inv;
    pcm::FaultSet known;
    Rng rng(1);
    const BitVector data = BitVector::random(32, rng);
    const WriteOutcome out =
        writeWithInversion(cells, data, part, inv, known);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.programPasses, 1u);
    EXPECT_EQ(out.newFaults, 0u);
    EXPECT_TRUE(inv.none());
    EXPECT_EQ(cells.read(), data);
}

TEST(InversionDriver, DiscoversAndMasksAWrongFault)
{
    XorPartition part(32);
    pcm::CellArray cells(32);
    cells.injectFault(5, true);
    BitVector inv;
    pcm::FaultSet known;
    const BitVector zeros(32);
    const WriteOutcome out =
        writeWithInversion(cells, zeros, part, inv, known);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.newFaults, 1u);
    ASSERT_EQ(known.size(), 1u);
    EXPECT_EQ(known[0].pos, 5u);
    EXPECT_TRUE(known[0].stuck);
    EXPECT_TRUE(inv.get(part.groupOf(5)));
    EXPECT_EQ(applyGroupInversion(cells.read(), part, inv), zeros);
}

TEST(InversionDriver, PreloadedKnowledgeAvoidsRework)
{
    XorPartition part(32);
    pcm::CellArray cells(32);
    cells.injectFault(5, true);
    BitVector inv;
    pcm::FaultSet known{{5, true}};
    const BitVector zeros(32);
    const WriteOutcome out =
        writeWithInversion(cells, zeros, part, inv, known);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.programPasses, 1u);    // fail-cache style: one pass
    EXPECT_EQ(out.newFaults, 0u);
}

TEST(InversionDriver, CollisionTriggersRepartitionAndSucceeds)
{
    // 2 and 9 share group 2 under mask 0 ((2^0)%7 == (9^0)%7) but
    // not under mask 1 ((3)%7=3 vs (8)%7=1).
    XorPartition part(32);
    ASSERT_EQ(part.groupOf(2), part.groupOf(9));

    pcm::CellArray cells(32);
    cells.injectFault(2, true);     // Wrong for zeros
    cells.injectFault(9, false);    // Right for zeros
    BitVector inv;
    pcm::FaultSet known;
    const BitVector zeros(32);
    const WriteOutcome out =
        writeWithInversion(cells, zeros, part, inv, known);
    EXPECT_TRUE(out.ok);
    EXPECT_GE(out.repartitions, 1u);
    EXPECT_NE(part.currentMask(), 0u);
    EXPECT_EQ(known.size(), 2u);
    EXPECT_EQ(applyGroupInversion(cells.read(), part, inv), zeros);
}

TEST(InversionDriver, UnseparableFaultsFailLoudly)
{
    RigidPartition part;
    pcm::CellArray cells(32);
    // 2 and 10 are congruent mod 8: unseparable under this partition.
    cells.injectFault(2, true);
    cells.injectFault(10, false);
    BitVector inv;
    pcm::FaultSet known;
    BitVector data(32);    // 2 Wrong, 10 Right: a genuine conflict
    const WriteOutcome out =
        writeWithInversion(cells, data, part, inv, known);
    EXPECT_FALSE(out.ok);
}

TEST(InversionDriver, HiddenRightFaultsCostNothing)
{
    RigidPartition part;
    pcm::CellArray cells(32);
    cells.injectFault(2, false);
    cells.injectFault(10, false);    // same group, both Right for 0s
    BitVector inv;
    pcm::FaultSet known;
    const BitVector zeros(32);
    const WriteOutcome out =
        writeWithInversion(cells, zeros, part, inv, known);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.programPasses, 1u);
    EXPECT_EQ(out.newFaults, 0u);    // never even surfaced
}

TEST(InversionDriver, ApplyGroupInversionIsAnInvolution)
{
    XorPartition part(64);
    Rng rng(3);
    const BitVector data = BitVector::random(64, rng);
    BitVector inv(7);
    inv.set(1, true);
    inv.set(6, true);
    const BitVector once = applyGroupInversion(data, part, inv);
    EXPECT_NE(once, data);
    EXPECT_EQ(applyGroupInversion(once, part, inv), data);
}

TEST(InversionDriver, RandomizedRoundTripsUntilHonestFailure)
{
    Rng rng(7);
    for (int trial = 0; trial < 30; ++trial) {
        XorPartition part(32);
        pcm::CellArray cells(32);
        BitVector inv;
        bool alive = true;
        for (int step = 0; step < 40 && alive; ++step) {
            if (step % 4 == 0) {
                const auto pos = static_cast<std::uint32_t>(
                    rng.nextBounded(32));
                if (!cells.isStuck(pos))
                    cells.injectFaultAtCurrentValue(pos);
            }
            pcm::FaultSet known;
            const BitVector data = BitVector::random(32, rng);
            const WriteOutcome out =
                writeWithInversion(cells, data, part, inv, known);
            if (!out.ok) {
                alive = false;
                break;
            }
            ASSERT_EQ(applyGroupInversion(cells.read(), part, inv),
                      data);
        }
    }
}

} // namespace
} // namespace aegis::scheme
