/**
 * @file
 * Unit tests for the (72,64) Hamming SEC-DED codec and scheme.
 */

#include <gtest/gtest.h>

#include "scheme/hamming.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::scheme {
namespace {

using Status = HammingCodec::Status;

TEST(HammingCodec, CleanDecode)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t data = rng.nextU64();
        const std::uint8_t check = HammingCodec::encode(data);
        std::uint64_t word = data;
        EXPECT_EQ(HammingCodec::decode(word, check), Status::Clean);
        EXPECT_EQ(word, data);
    }
}

TEST(HammingCodec, CorrectsEverySingleDataBitError)
{
    Rng rng(2);
    for (int trial = 0; trial < 8; ++trial) {
        const std::uint64_t data = rng.nextU64();
        const std::uint8_t check = HammingCodec::encode(data);
        for (int bit = 0; bit < 64; ++bit) {
            std::uint64_t word = data ^ (1ull << bit);
            EXPECT_EQ(HammingCodec::decode(word, check),
                      Status::Corrected);
            EXPECT_EQ(word, data) << "bit " << bit;
        }
    }
}

TEST(HammingCodec, CorrectsCheckBitErrors)
{
    Rng rng(3);
    const std::uint64_t data = rng.nextU64();
    const std::uint8_t check = HammingCodec::encode(data);
    for (int bit = 0; bit < 8; ++bit) {
        std::uint64_t word = data;
        const std::uint8_t bad = check ^ static_cast<std::uint8_t>(
            1u << bit);
        EXPECT_EQ(HammingCodec::decode(word, bad), Status::Corrected);
        EXPECT_EQ(word, data) << "check bit " << bit;
    }
}

TEST(HammingCodec, DetectsDoubleDataErrors)
{
    Rng rng(4);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t data = rng.nextU64();
        const std::uint8_t check = HammingCodec::encode(data);
        const int b1 = static_cast<int>(rng.nextBounded(64));
        int b2;
        do {
            b2 = static_cast<int>(rng.nextBounded(64));
        } while (b2 == b1);
        std::uint64_t word = data ^ (1ull << b1) ^ (1ull << b2);
        EXPECT_EQ(HammingCodec::decode(word, check),
                  Status::Uncorrectable);
    }
}

TEST(Hamming, MetadataBasics)
{
    HammingScheme ecc(512);
    EXPECT_EQ(ecc.name(), "hamming72_64");
    EXPECT_EQ(ecc.overheadBits(), 64u);
    EXPECT_EQ(ecc.hardFtc(), 1u);
}

TEST(Hamming, CleanRoundTrip)
{
    HammingScheme ecc(128);
    pcm::CellArray cells(128);
    Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        const BitVector data = BitVector::random(128, rng);
        EXPECT_TRUE(ecc.write(cells, data).ok);
        EXPECT_EQ(ecc.read(cells), data);
    }
}

TEST(Hamming, OneFaultPerWordIsAlwaysCorrected)
{
    HammingScheme ecc(256);
    pcm::CellArray cells(256);
    Rng rng(6);
    // One fault in each of the four 64-bit words.
    for (int w = 0; w < 4; ++w)
        cells.injectFault(w * 64 + 13, rng.nextBool());
    for (int i = 0; i < 20; ++i) {
        const BitVector data = BitVector::random(256, rng);
        ASSERT_TRUE(ecc.write(cells, data).ok);
        ASSERT_EQ(ecc.read(cells), data);
    }
}

TEST(Hamming, TwoWrongFaultsInAWordFail)
{
    HammingScheme ecc(64);
    pcm::CellArray cells(64);
    cells.injectFault(3, true);
    cells.injectFault(40, true);
    // Both faults Wrong for an all-zero write.
    EXPECT_FALSE(ecc.write(cells, BitVector(64)).ok);
    // Both Right for an all-ones write: fine.
    EXPECT_TRUE(ecc.write(cells, BitVector(64, true)).ok);
}

TEST(Hamming, TrackerExactFailureProbability)
{
    HammingScheme ecc(128);
    auto tracker = ecc.makeTracker({});
    Rng rng(7);
    EXPECT_EQ(tracker->writeFailureProbability(rng), 0.0);

    tracker->onFault({0, true});         // word 0: m = 1 -> ok
    EXPECT_DOUBLE_EQ(tracker->writeFailureProbability(rng), 0.0);

    tracker->onFault({5, true});         // word 0: m = 2
    // P(word fails) = 1 - 3/4 = 1/4.
    EXPECT_DOUBLE_EQ(tracker->writeFailureProbability(rng), 0.25);

    tracker->onFault({64, true});        // word 1: m = 1
    EXPECT_DOUBLE_EQ(tracker->writeFailureProbability(rng), 0.25);

    tracker->onFault({70, true});        // word 1: m = 2
    // 1 - (3/4)^2.
    EXPECT_DOUBLE_EQ(tracker->writeFailureProbability(rng),
                     1.0 - 9.0 / 16.0);
    EXPECT_EQ(tracker->faultCount(), 4u);
}

TEST(Hamming, RejectsBadSizes)
{
    EXPECT_THROW(HammingScheme ecc(100), ConfigError);
    EXPECT_THROW(HammingScheme ecc(32), ConfigError);
}

} // namespace
} // namespace aegis::scheme
