/**
 * @file
 * Tests for the functional PCM device and the scheme factory.
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "sim/device.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

using core::makeScheme;
using core::paperSchemeNames;
using sim::PcmDevice;

TEST(Factory, BuildsEveryPaperScheme)
{
    for (std::size_t bits : {256u, 512u}) {
        for (const std::string &name : paperSchemeNames(bits)) {
            auto scheme = makeScheme(name, bits);
            EXPECT_EQ(scheme->name(), name);
            EXPECT_EQ(scheme->blockBits(), bits);
            EXPECT_GT(scheme->overheadBits(), 0u);
            EXPECT_GE(scheme->hardFtc(), 1u);
        }
    }
}

TEST(Factory, ParsesVariantNames)
{
    EXPECT_EQ(makeScheme("aegis-rw-17x31", 512)->name(),
              "aegis-rw-17x31");
    EXPECT_EQ(makeScheme("aegis-rw-p5-17x31", 512)->name(),
              "aegis-rw-p5-17x31");
    EXPECT_EQ(makeScheme("safer64-cache", 512)->name(),
              "safer64-cache");
    EXPECT_EQ(makeScheme("hamming", 512)->name(), "hamming72_64");
    EXPECT_EQ(makeScheme("none", 512)->name(), "none");
    EXPECT_EQ(makeScheme("rdis3", 512)->name(), "rdis3");
}

TEST(Factory, SchemeSpecParsesAndFormats)
{
    using core::SchemeSpec;
    EXPECT_EQ(SchemeSpec::parse("aegis-9x61"),
              (SchemeSpec{"aegis-9x61", false}));
    EXPECT_EQ(SchemeSpec::parse("aegis-9x61+audit"),
              (SchemeSpec{"aegis-9x61", true}));
    // Repeated suffixes collapse into the single flag.
    EXPECT_EQ(SchemeSpec::parse("ecp6+audit+audit"),
              (SchemeSpec{"ecp6", true}));
    EXPECT_EQ(SchemeSpec::parse("ecp6+audit").str(), "ecp6+audit");
    EXPECT_EQ((SchemeSpec{"safer64", false}).str(), "safer64");
    EXPECT_EQ((SchemeSpec{"safer64", false}).audited().str(),
              "safer64+audit");
    // The textual spelling stays the serialized form: scheme->name()
    // round-trips through parse()/str().
    for (const char *spelled : {"aegis-17x31", "aegis-17x31+audit"}) {
        auto scheme = makeScheme(SchemeSpec::parse(spelled), 512);
        EXPECT_EQ(scheme->name(), spelled);
        EXPECT_EQ(SchemeSpec::parse(scheme->name()).str(), spelled);
    }
}

TEST(Factory, SchemeSpecBuildsAuditedExactlyOnce)
{
    using core::SchemeSpec;
    auto once = makeScheme(SchemeSpec::parse("ecp6+audit"), 512);
    EXPECT_EQ(once->name(), "ecp6+audit");
    auto twice = makeScheme(SchemeSpec::parse("ecp6+audit+audit"), 512);
    EXPECT_EQ(twice->name(), "ecp6+audit");
    auto forced = core::makeAuditedScheme("ecp6+audit", 512);
    EXPECT_EQ(forced->name(), "ecp6+audit");
}

TEST(Factory, RejectsUnknownNames)
{
    EXPECT_THROW(makeScheme("sparkle", 512), ConfigError);
    EXPECT_THROW(makeScheme("ecp0", 512), ConfigError);
    EXPECT_THROW(makeScheme("aegis-9x60", 512), ConfigError);  // 60 ∤ prime
    EXPECT_THROW(makeScheme("aegis-", 512), ConfigError);
    EXPECT_THROW(makeScheme("aegis-rw-p0-23x23", 512), ConfigError);
}

TEST(Device, CleanPageRoundTrip)
{
    const pcm::Geometry geom{512, 4096, 2};
    auto proto = makeScheme("aegis-17x31", 512);
    PcmDevice device(geom, *proto);
    Rng rng(1);

    const BitVector page0 = BitVector::random(geom.pageBits(), rng);
    const BitVector page1 = BitVector::random(geom.pageBits(), rng);
    EXPECT_TRUE(device.writePage(0, page0));
    EXPECT_TRUE(device.writePage(1, page1));
    EXPECT_EQ(device.readPage(0), page0);
    EXPECT_EQ(device.readPage(1), page1);
    EXPECT_EQ(device.stats().blockWrites, 2u * geom.blocksPerPage());
    EXPECT_EQ(device.stats().failedWrites, 0u);
}

TEST(Device, SurvivesScatteredFaults)
{
    const pcm::Geometry geom{256, 1024, 4};
    auto proto = makeScheme("aegis-12x23", 256);
    PcmDevice device(geom, *proto);
    Rng rng(2);

    device.injectRandomFaults(32, rng);    // 1 fault/block on average
    for (int round = 0; round < 5; ++round) {
        for (std::uint32_t p = 0; p < geom.pages; ++p) {
            const BitVector data =
                BitVector::random(geom.pageBits(), rng);
            ASSERT_TRUE(device.writePage(p, data));
            ASSERT_EQ(device.readPage(p), data);
        }
    }
    EXPECT_EQ(device.stats().deadBlocks, 0u);
}

TEST(Device, DirectoryRequiredSchemesRejectConstructionWithoutOne)
{
    const pcm::Geometry geom{512, 4096, 1};
    auto rdis = makeScheme("rdis3", 512);
    EXPECT_THROW(PcmDevice(geom, *rdis), ConfigError);
}

TEST(Device, RwSchemeWithSharedOracleDirectory)
{
    const pcm::Geometry geom{512, 4096, 1};
    auto proto = makeScheme("aegis-rw-23x23", 512);
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    PcmDevice device(geom, *proto, dir);
    Rng rng(3);

    device.injectRandomFaults(20, rng);
    for (int round = 0; round < 4; ++round) {
        const BitVector data = BitVector::random(geom.pageBits(), rng);
        ASSERT_TRUE(device.writePage(0, data));
        ASSERT_EQ(device.readPage(0), data);
    }
    // Verification reads populated the shared fail cache.
    EXPECT_GT(dir->totalFaults(), 0u);
}

TEST(Device, DeadBlockIsReported)
{
    const pcm::Geometry geom{512, 4096, 1};
    auto proto = makeScheme("ecp1", 512);
    PcmDevice device(geom, *proto);

    device.injectFault(0, 10, true);
    device.injectFault(0, 20, true);
    // All-zero data exposes both stuck-at-1 faults; ECP1 cannot cope.
    const BitVector zeros(512);
    EXPECT_FALSE(device.writeBlock(0, zeros).ok);
    EXPECT_TRUE(device.blockDead(0));
    EXPECT_EQ(device.stats().deadBlocks, 1u);
    EXPECT_EQ(device.stats().failedWrites, 1u);
}

TEST(Device, MismatchedSchemeRejected)
{
    const pcm::Geometry geom{512, 4096, 1};
    auto proto = makeScheme("aegis-12x23", 256);
    EXPECT_THROW(PcmDevice(geom, *proto), ConfigError);
}

TEST(Device, IntegrationWriteUntilFirstDeath)
{
    // End-to-end: keep flooding a small device with faults and
    // writes; data must decode correctly on every successful write,
    // and eventually a block must die.
    const pcm::Geometry geom{256, 1024, 2};
    auto proto = makeScheme("aegis-9x31", 256);
    PcmDevice device(geom, *proto);
    Rng rng(4);

    bool died = false;
    for (int round = 0; round < 300 && !died; ++round) {
        device.injectRandomFaults(2, rng);
        for (std::uint64_t blk = 0; blk < geom.totalBlocks(); ++blk) {
            if (device.blockDead(blk))
                continue;
            const BitVector data = BitVector::random(256, rng);
            const auto outcome = device.writeBlock(blk, data);
            if (!outcome.ok) {
                died = true;
            } else {
                ASSERT_EQ(device.readBlock(blk), data);
            }
        }
    }
    EXPECT_TRUE(died);
    EXPECT_GT(device.stats().repartitions, 0u);
}

} // namespace
} // namespace aegis
