/**
 * @file
 * Unit and property tests for Aegis-rw and Aegis-rw-p.
 */

#include <gtest/gtest.h>

#include "aegis/aegis_rw.h"
#include "aegis/aegis_rw_p.h"
#include "aegis/cost.h"
#include "pcm/fail_cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::core {
namespace {

/** Inject a fresh random fault and mirror it into the directory. */
std::uint32_t
injectKnownFault(pcm::CellArray &cells, pcm::OracleFaultDirectory &dir,
                 std::uint64_t block_id, Rng &rng)
{
    std::uint32_t pos;
    do {
        pos = static_cast<std::uint32_t>(rng.nextBounded(cells.size()));
    } while (cells.isStuck(pos));
    const bool stuck = rng.nextBool();
    cells.injectFault(pos, stuck);
    dir.record(block_id, {pos, stuck});
    return pos;
}

TEST(AegisRw, MetadataBasics)
{
    const AegisRwScheme rw = AegisRwScheme::forHeight(23, 512);
    EXPECT_EQ(rw.name(), "aegis-rw-23x23");
    EXPECT_EQ(rw.overheadBits(), 28u);
    EXPECT_EQ(rw.hardFtc(), 9u);    // floor(9/2)*ceil(9/2)+1 = 21 <= 23
    EXPECT_TRUE(rw.requiresDirectory());
}

TEST(AegisRw, KnownFaultsHandledInOnePass)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisRwScheme rw = AegisRwScheme::forHeight(23, 512);
    rw.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(512);
    Rng rng(1);

    for (int f = 0; f < 6; ++f)
        injectKnownFault(cells, *dir, 0, rng);
    for (int w = 0; w < 20; ++w) {
        const BitVector data = BitVector::random(512, rng);
        const auto outcome = rw.write(cells, data);
        ASSERT_TRUE(outcome.ok);
        // The fail cache knows everything: exactly one program pass.
        ASSERT_EQ(outcome.programPasses, 1u);
        ASSERT_EQ(rw.read(cells), data);
    }
}

TEST(AegisRw, UnknownFaultTriggersRetryAndRecording)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisRwScheme rw = AegisRwScheme::forHeight(23, 256);
    rw.attachDirectory(dir.get(), 9);
    pcm::CellArray cells(256);

    cells.injectFault(77, true);    // not in the directory yet
    const BitVector zeros(256);
    const auto outcome = rw.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.newFaults, 1u);
    EXPECT_GE(outcome.programPasses, 2u);
    EXPECT_EQ(dir->lookup(9).size(), 1u);
    EXPECT_EQ(rw.read(cells), zeros);
}

TEST(AegisRw, MultipleSameTypeFaultsShareAGroup)
{
    // Place two faults in the same slope-0 group, both stuck at 1,
    // and write zeros: both are Wrong, one inversion fixes both with
    // no re-partition.
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisRwScheme rw = AegisRwScheme::forHeight(23, 512);
    rw.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(512);

    const std::uint32_t pos1 = 5;          // (0, 5)
    const std::uint32_t pos2 = 23 + 5;     // (1, 5): same group @ k=0
    ASSERT_EQ(rw.partition().groupOf(pos1, 0),
              rw.partition().groupOf(pos2, 0));
    for (std::uint32_t pos : {pos1, pos2}) {
        cells.injectFault(pos, true);
        dir->record(0, {pos, true});
    }
    const BitVector zeros(512);
    const auto outcome = rw.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.repartitions, 0u);
    EXPECT_EQ(rw.currentSlope(), 0u);
    EXPECT_EQ(rw.read(cells), zeros);
}

TEST(AegisRw, HardFtcGuaranteeHolds)
{
    const AegisRwScheme proto = AegisRwScheme::forHeight(23, 512);
    const std::size_t guarantee = proto.hardFtc();
    Rng rng(3);
    for (int trial = 0; trial < 25; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        AegisRwScheme rw = proto;
        rw.attachDirectory(dir.get(), 0);
        pcm::CellArray cells(512);
        for (std::size_t f = 0; f < guarantee; ++f) {
            injectKnownFault(cells, *dir, 0, rng);
            for (int w = 0; w < 3; ++w) {
                const BitVector data = BitVector::random(512, rng);
                ASSERT_TRUE(rw.write(cells, data).ok);
                ASSERT_EQ(rw.read(cells), data);
            }
        }
    }
}

TEST(AegisRwP, MetadataBasics)
{
    const AegisRwPScheme rwp = AegisRwPScheme::forHeight(31, 512, 5);
    EXPECT_EQ(rwp.name(), "aegis-rw-p5-17x31");
    // min(2*5+1, rw-FTC(31)) = min(11, 11): floor(11/2)*ceil(11/2)+1
    // = 31 <= B = 31.
    EXPECT_EQ(rwp.hardFtc(), 11u);
    EXPECT_TRUE(rwp.requiresDirectory());
    EXPECT_EQ(rwp.pointerBudget(), 5u);
}

TEST(AegisRwP, RoundTripWithKnownFaults)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisRwPScheme rwp = AegisRwPScheme::forHeight(23, 512, 4);
    rwp.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(512);
    Rng rng(5);

    for (int f = 0; f < 8; ++f) {
        injectKnownFault(cells, *dir, 0, rng);
        for (int w = 0; w < 6; ++w) {
            const BitVector data = BitVector::random(512, rng);
            const auto outcome = rwp.write(cells, data);
            ASSERT_TRUE(outcome.ok) << "fault " << f;
            ASSERT_EQ(outcome.programPasses, 1u);
            ASSERT_EQ(rwp.read(cells), data);
        }
    }
}

TEST(AegisRwP, ComplementCaseStoresWhenWrongGroupsOverflow)
{
    // 3 Wrong faults in 3 distinct groups with a 2-pointer budget:
    // case A (point at W groups) is infeasible, case B (point at R
    // groups, invert the rest) must kick in — here there are no R
    // faults at all, so zero pointers suffice for case B.
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisRwPScheme rwp = AegisRwPScheme::forHeight(23, 512, 2);
    rwp.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(512);

    for (std::uint32_t pos : {0u, 1u, 2u}) {    // same column is
        cells.injectFault(pos, true);           // impossible: 0,1,2
        dir->record(0, {pos, true});            // are rows of col 0
    }
    const BitVector zeros(512);    // all three Wrong
    const auto outcome = rwp.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(rwp.read(cells), zeros);
}

TEST(AegisRwP, HardFtcGuaranteeHolds)
{
    const AegisRwPScheme proto = AegisRwPScheme::forHeight(23, 512, 3);
    const std::size_t guarantee = proto.hardFtc();    // 7
    ASSERT_EQ(guarantee, 7u);
    Rng rng(7);
    for (int trial = 0; trial < 25; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        AegisRwPScheme rwp = proto;
        rwp.attachDirectory(dir.get(), 0);
        pcm::CellArray cells(512);
        for (std::size_t f = 0; f < guarantee; ++f) {
            injectKnownFault(cells, *dir, 0, rng);
            for (int w = 0; w < 3; ++w) {
                const BitVector data = BitVector::random(512, rng);
                ASSERT_TRUE(rwp.write(cells, data).ok);
                ASSERT_EQ(rwp.read(cells), data);
            }
        }
    }
}

TEST(AegisRwP, SmallBudgetDiesBeforeLargeBudget)
{
    // Same fault stream: p = 1 must fail no later than p = 9.
    Rng rng(9);
    int small_first = 0, large_first = 0;
    for (int trial = 0; trial < 15; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        AegisRwPScheme small = AegisRwPScheme::forHeight(23, 512, 1);
        AegisRwPScheme large = AegisRwPScheme::forHeight(23, 512, 9);
        small.attachDirectory(dir.get(), 0);
        large.attachDirectory(dir.get(), 0);
        pcm::CellArray cells_s(512), cells_l(512);

        bool small_alive = true, large_alive = true;
        for (int f = 0; f < 40 && (small_alive || large_alive); ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
            } while (cells_s.isStuck(pos));
            const bool stuck = rng.nextBool();
            cells_s.injectFault(pos, stuck);
            cells_l.injectFault(pos, stuck);
            dir->record(0, {pos, stuck});
            for (int w = 0; w < 4; ++w) {
                const BitVector data = BitVector::random(512, rng);
                if (small_alive)
                    small_alive = small.write(cells_s, data).ok;
                if (large_alive)
                    large_alive = large.write(cells_l, data).ok;
            }
            if (!small_alive && large_alive) {
                ++small_first;
                break;
            }
            ASSERT_FALSE(!large_alive && small_alive)
                << "larger budget died first (trial " << trial << ")";
        }
        (void)large_first;
    }
    EXPECT_GT(small_first, 0);
}

TEST(AegisRwP, WriteWithoutDirectoryRejected)
{
    AegisRwPScheme rwp = AegisRwPScheme::forHeight(23, 512, 2);
    pcm::CellArray cells(512);
    EXPECT_THROW(rwp.write(cells, BitVector(512)), ConfigError);
}

} // namespace
} // namespace aegis::core
