/**
 * @file
 * The checkpoint/resume layer: bit-exact study serialization, the
 * versioned+checksummed file codec's rejection of corrupt and stale
 * inputs, and CheckpointSession end-to-end — a sweep interrupted
 * mid-unit and resumed (with a different worker count) must produce a
 * study bit-identical to an uninterrupted run.
 */

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "sim/checkpoint.h"
#include "sim/experiment.h"
#include "util/chaos.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/stats.h"

namespace aegis::sim {
namespace {

/** Unique temp path per test; removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : p((std::filesystem::temp_directory_path() /
             ("aegis_ckpt_test_" + name + "_" +
              std::to_string(::getpid())))
                .string())
    {
        std::remove(p.c_str());
    }
    ~TempPath() { std::remove(p.c_str()); }
    const std::string &str() const { return p; }

  private:
    std::string p;
};

/** Restore the no-chaos default after a test that injects faults. */
class ChaosGuard
{
  public:
    ~ChaosGuard() { setChaosConfigForTest(ChaosConfig{}); }
};

PageStudy
samplePageStudy()
{
    PageStudy s;
    s.scheme = "aegis-9x61";
    s.overheadBits = 67;
    s.blockBits = 512;
    s.recoverableFaults.add(3.0);
    s.recoverableFaults.add(7.5);
    s.pageLifetime.add(1e6);
    s.repartitions.add(2.0);
    s.survival.addDeath(1e6);
    s.survival.addDeath(2e6);
    s.metrics.counters[0] = 11;
    s.metrics.gauges[0] = 4;
    s.metrics.timers[0] = obs::TimingStat{3, 900, 400};
    return s;
}

TEST(CheckpointCodec, PageStudyRoundTripsBitExact)
{
    const PageStudy s = samplePageStudy();
    BinaryWriter w;
    serializeStudy(s, w);
    BinaryReader r(w.data());
    PageStudy back;
    ASSERT_TRUE(deserializeStudy(back, r));
    EXPECT_TRUE(r.atEnd());

    EXPECT_EQ(back.scheme, s.scheme);
    EXPECT_EQ(back.overheadBits, s.overheadBits);
    EXPECT_EQ(back.blockBits, s.blockBits);
    EXPECT_EQ(back.recoverableFaults.count(),
              s.recoverableFaults.count());
    EXPECT_EQ(back.recoverableFaults.mean(),
              s.recoverableFaults.mean());    // exact: same bits
    EXPECT_EQ(back.pageLifetime.sum(), s.pageLifetime.sum());
    EXPECT_EQ(back.metrics.counters[0], 11u);
    EXPECT_EQ(back.metrics.timers[0].count, 3u);

    // Re-serializing the restored study reproduces the exact bytes.
    BinaryWriter w2;
    serializeStudy(back, w2);
    EXPECT_EQ(w2.data(), w.data());
}

TEST(CheckpointCodec, BlockAndSurvivalStudiesRoundTrip)
{
    BlockStudy b;
    b.scheme = "safer64";
    b.blockLifetime.add(42.0);
    b.faultsAtDeath.add(9);
    b.faultsAtDeath.add(9);
    BinaryWriter wb;
    serializeStudy(b, wb);
    BinaryReader rb(wb.data());
    BlockStudy b2;
    ASSERT_TRUE(deserializeStudy(b2, rb) && rb.atEnd());
    EXPECT_EQ(b2.scheme, "safer64");
    EXPECT_EQ(b2.faultsAtDeath.countOf(9), 2u);

    SurvivalStudy v;
    v.survival.addDeath(5.0);
    BinaryWriter wv;
    serializeStudy(v, wv);
    BinaryReader rv(wv.data());
    SurvivalStudy v2;
    ASSERT_TRUE(deserializeStudy(v2, rv) && rv.atEnd());
    EXPECT_EQ(v2.survival.population(), 1u);
}

TEST(CheckpointCodec, TruncatedStudyBlobFails)
{
    BinaryWriter w;
    serializeStudy(samplePageStudy(), w);
    const std::string whole = w.data();
    PageStudy out;
    BinaryReader r(std::string_view(whole).substr(0, whole.size() / 2));
    EXPECT_FALSE(deserializeStudy(out, r));
}

CheckpointData
sampleCheckpoint()
{
    CheckpointData data;
    data.program = "fig5_bench";
    data.flagsFingerprint = 0xfeedface;
    data.masterSeed = 42;
    BinaryWriter blob;
    serializeStudy(samplePageStudy(), blob);
    data.completed.push_back(
        CheckpointUnit{0, 0xabcdef, 1, blob.data()});
    CheckpointPartial partial;
    partial.index = 1;
    partial.fingerprint = 0x123456;
    partial.kind = 1;
    partial.items = 64;
    partial.grain = 16;
    partial.chunks.push_back(CheckpointChunk{2, blob.data()});
    data.partials.push_back(partial);
    return data;
}

TEST(CheckpointFile, EncodeDecodeRoundTrips)
{
    const CheckpointData data = sampleCheckpoint();
    const std::string image = encodeCheckpoint(data);
    const Expected<CheckpointData> back = decodeCheckpoint(image, "x");
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back->program, "fig5_bench");
    EXPECT_EQ(back->flagsFingerprint, 0xfeedfaceu);
    EXPECT_EQ(back->masterSeed, 42u);
    ASSERT_EQ(back->completed.size(), 1u);
    EXPECT_EQ(back->completed[0].fingerprint, 0xabcdefu);
    EXPECT_EQ(back->completed[0].blob, data.completed[0].blob);
    ASSERT_EQ(back->partials.size(), 1u);
    EXPECT_EQ(back->partials[0].items, 64u);
    ASSERT_EQ(back->partials[0].chunks.size(), 1u);
    EXPECT_EQ(back->partials[0].chunks[0].index, 2u);
    EXPECT_EQ(back->shardIndex, 0u);
    EXPECT_EQ(back->shardCount, 1u);
}

TEST(CheckpointFile, ShardIdentityAndMultiplePartialsRoundTrip)
{
    CheckpointData data = sampleCheckpoint();
    data.shardIndex = 2;
    data.shardCount = 4;
    data.completed.clear(); // shard workers never complete units
    CheckpointPartial second;
    second.index = 3;
    second.fingerprint = 0x777;
    second.kind = 2;
    second.items = 96;
    second.grain = 16;
    second.chunks.push_back(CheckpointChunk{2, "blob-a"});
    second.chunks.push_back(CheckpointChunk{6, "blob-b"});
    data.partials.push_back(second);

    const Expected<CheckpointData> back =
        decodeCheckpoint(encodeCheckpoint(data), "x");
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back->shardIndex, 2u);
    EXPECT_EQ(back->shardCount, 4u);
    ASSERT_EQ(back->partials.size(), 2u);
    EXPECT_EQ(back->partials[1].index, 3u);
    EXPECT_EQ(back->partials[1].items, 96u);
    ASSERT_EQ(back->partials[1].chunks.size(), 2u);
    EXPECT_EQ(back->partials[1].chunks[1].blob, "blob-b");
}

TEST(CheckpointFile, InvalidShardIdentityRejected)
{
    CheckpointData data = sampleCheckpoint();
    data.shardIndex = 4;
    data.shardCount = 4; // index out of range
    const Expected<CheckpointData> r =
        decodeCheckpoint(encodeCheckpoint(data), "ck");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("shard"), std::string::npos) << r.error();

    data.shardIndex = 0;
    data.shardCount = 0; // zero shards is meaningless
    const Expected<CheckpointData> z =
        decodeCheckpoint(encodeCheckpoint(data), "ck");
    EXPECT_FALSE(z.ok());
}

TEST(CheckpointFile, BadMagicRejected)
{
    std::string image = encodeCheckpoint(sampleCheckpoint());
    image[0] = 'X';
    const Expected<CheckpointData> r = decodeCheckpoint(image, "ck");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("ck"), std::string::npos) << r.error();
}

TEST(CheckpointFile, VersionMismatchRejected)
{
    std::string image = encodeCheckpoint(sampleCheckpoint());
    image[8] = static_cast<char>(kCheckpointVersion + 1);
    const Expected<CheckpointData> r = decodeCheckpoint(image, "ck");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("version"), std::string::npos)
        << r.error();
}

TEST(CheckpointFile, TruncationRejected)
{
    const std::string image = encodeCheckpoint(sampleCheckpoint());
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{27},
          image.size() - 1}) {
        const Expected<CheckpointData> r = decodeCheckpoint(
            std::string_view(image).substr(0, keep), "ck");
        EXPECT_FALSE(r.ok()) << "kept " << keep << " bytes";
    }
}

TEST(CheckpointFile, TruncationAtEveryPrefixRejectedCleanly)
{
    // A crash can cut the file anywhere: inside the magic, the
    // version, the length/checksum words, or mid-payload. Every
    // proper prefix must come back as a structured error naming the
    // path — never a crash, never a silently partial decode.
    const std::string image = encodeCheckpoint(sampleCheckpoint());
    ASSERT_GT(image.size(), 28u); // header is 28 bytes
    for (std::size_t keep = 0; keep < image.size(); ++keep) {
        const Expected<CheckpointData> r = decodeCheckpoint(
            std::string_view(image).substr(0, keep), "trunc.ckpt");
        ASSERT_FALSE(r.ok()) << "kept " << keep << " of "
                             << image.size() << " bytes";
        EXPECT_NE(r.error().find("trunc.ckpt"), std::string::npos)
            << "kept " << keep << ": " << r.error();
    }
}

TEST(CheckpointFile, CorruptionAtSeveralOffsetsRejected)
{
    // Flip one byte at offsets spread across every file region; the
    // decoder must reject each image with a structured error (which
    // detector fires — magic, version, length, checksum — depends on
    // the offset, but none may pass).
    const std::string image = encodeCheckpoint(sampleCheckpoint());
    const std::size_t offsets[] = {
        0,                   // magic
        9,                   // version word
        14,                  // payload-size word
        21,                  // checksum word
        28,                  // first payload byte
        28 + (image.size() - 28) / 2, // mid-payload
        image.size() - 1,    // last payload byte
    };
    for (const std::size_t at : offsets) {
        std::string bad = image;
        bad[at] = static_cast<char>(bad[at] ^ 0x5a);
        const Expected<CheckpointData> r =
            decodeCheckpoint(bad, "corrupt.ckpt");
        ASSERT_FALSE(r.ok()) << "flip at byte " << at;
        EXPECT_NE(r.error().find("corrupt.ckpt"), std::string::npos)
            << "flip at byte " << at << ": " << r.error();
    }
}

TEST(CheckpointFile, CorruptPayloadRejectedByChecksum)
{
    std::string image = encodeCheckpoint(sampleCheckpoint());
    image[image.size() - 1] ^= 0x40;    // flip a payload bit
    const Expected<CheckpointData> r = decodeCheckpoint(image, "ck");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("checksum"), std::string::npos)
        << r.error();
}

TEST(CheckpointFile, MissingFileReportsPath)
{
    const Expected<CheckpointData> r =
        loadCheckpointFile("/nonexistent-dir/nope.ckpt");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().find("nope.ckpt"), std::string::npos)
        << r.error();
}

/** Run a tiny checkpointed page sweep; body mirrors runPageStudy. */
PageStudy
runToyUnit(CheckpointSession *session, CancelToken *cancel,
           unsigned jobs, std::size_t items, std::size_t cancelAfter)
{
    ScopedRunContext scoped(RunContext{session, cancel});
    std::atomic<std::size_t> done{0};
    return runStudyUnit<PageStudy>(
        items, jobs, StudyKind::Page, /*fingerprint=*/0x5eed,
        [&](PageStudy &acc, std::size_t i) {
            Rng rng(1234 + i);    // stands in for master.split(i)
            acc.pageLifetime.add(1e3 * static_cast<double>(i) +
                                 rng.nextDouble());
            acc.survival.addDeath(static_cast<double>(i + 1));
            acc.metrics.counters[0] += 1;
            if (cancelAfter != 0 &&
                done.fetch_add(1) + 1 >= cancelAfter && cancel)
                cancel->requestCancel(CancelReason::Injected);
        },
        /*grain=*/4);
}

TEST(CheckpointSession, InterruptedSweepResumesBitIdentical)
{
    // Golden: the uninterrupted, uncheckpointed run.
    const PageStudy golden =
        runToyUnit(nullptr, nullptr, 1, /*items=*/64, 0);

    for (const unsigned resumeJobs : {1u, 4u}) {
        TempPath path("resume_j" + std::to_string(resumeJobs));
        // First attempt: cancel partway through; progress lands in
        // the checkpoint via the injected-cancel path.
        {
            CheckpointSession session(path.str(), "toy", 7, 42);
            session.setSnapshotEveryChunks(1);
            CancelToken cancel;
            EXPECT_THROW(
                runToyUnit(&session, &cancel, 1, 64, /*cancelAfter=*/9),
                CancelledError);
        }
        // Second process: resume with a different jobs value.
        CheckpointSession session(path.str(), "toy", 7, 42);
        ASSERT_TRUE(session.resume().ok());
        const PageStudy resumed =
            runToyUnit(&session, nullptr, resumeJobs, 64, 0);

        BinaryWriter wg, wr;
        serializeStudy(golden, wg);
        serializeStudy(resumed, wr);
        EXPECT_EQ(wr.data(), wg.data())
            << "resume with --jobs " << resumeJobs
            << " diverged from the uninterrupted run";
        // Restored chunks were not re-executed: their metrics arrive
        // via restoredMetrics() instead of the process totals.
        EXPECT_GT(session.restoredMetrics().counters[0], 0u);
    }
}

TEST(CheckpointSession, CompletedUnitRestoredWithoutExecution)
{
    TempPath path("completed_unit");
    {
        CheckpointSession session(path.str(), "toy", 7, 42);
        (void)runToyUnit(&session, nullptr, 1, 32, 0);
    }
    CheckpointSession session(path.str(), "toy", 7, 42);
    ASSERT_TRUE(session.resume().ok());
    std::atomic<bool> executed{false};
    ScopedRunContext scoped(RunContext{&session, nullptr});
    const PageStudy restored = runStudyUnit<PageStudy>(
        32, 1, StudyKind::Page, 0x5eed,
        [&](PageStudy &, std::size_t) { executed = true; },
        /*grain=*/4);
    EXPECT_FALSE(executed.load())
        << "a finished unit must restore from the blob, not re-run";
    EXPECT_EQ(restored.pageLifetime.count(), 32u);
    EXPECT_EQ(session.restoredMetrics().counters[0], 32u);
}

TEST(CheckpointSession, StaleIdentityRejected)
{
    TempPath path("stale");
    {
        CheckpointSession session(path.str(), "toy", 7, 42);
        (void)runToyUnit(&session, nullptr, 1, 32, 0);
    }
    {    // different program
        CheckpointSession s(path.str(), "other", 7, 42);
        EXPECT_FALSE(s.resume().ok());
    }
    {    // different flags fingerprint
        CheckpointSession s(path.str(), "toy", 8, 42);
        EXPECT_FALSE(s.resume().ok());
    }
    {    // different master seed
        CheckpointSession s(path.str(), "toy", 7, 43);
        EXPECT_FALSE(s.resume().ok());
    }
    {    // same session identity, different unit fingerprint
        CheckpointSession s(path.str(), "toy", 7, 42);
        ASSERT_TRUE(s.resume().ok());
        ScopedRunContext scoped(RunContext{&s, nullptr});
        EXPECT_THROW((void)runStudyUnit<PageStudy>(
                         32, 1, StudyKind::Page, 0xbad,
                         [](PageStudy &, std::size_t) {}, 4),
                     ConfigError);
    }
}

TEST(CheckpointSession, ResumeRejectsCorruptFile)
{
    TempPath path("corrupt_file");
    {
        CheckpointSession session(path.str(), "toy", 7, 42);
        (void)runToyUnit(&session, nullptr, 1, 32, 0);
    }
    // Truncate the file on disk.
    std::filesystem::resize_file(path.str(), 10);
    CheckpointSession session(path.str(), "toy", 7, 42);
    const Status s = session.resume();
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.error().find(path.str()), std::string::npos)
        << s.error();
}

TEST(CheckpointSession, InjectedIoFailureDoesNotKillTheSweep)
{
    ChaosGuard guard;
    ChaosConfig chaos;
    chaos.ioFailRate = 1.0;    // every snapshot write fails
    setChaosConfigForTest(chaos);

    TempPath path("chaos_io");
    CheckpointSession session(path.str(), "toy", 7, 42);
    session.setSnapshotEveryChunks(1);
    // The sweep completes despite every checkpoint write failing.
    const PageStudy study = runToyUnit(&session, nullptr, 1, 32, 0);
    EXPECT_EQ(study.pageLifetime.count(), 32u);
    EXPECT_FALSE(session.writeSnapshot().ok());
}

TEST(CheckpointSession, RunnersIntegrateWithRealStudies)
{
    // The real runPageStudy through a checkpoint session equals the
    // plain run — no session, no difference.
    ExperimentConfig config;
    config.pages = 24;
    config.pageBytes = 512;
    config.lifetimeMean = 1e4;
    config.jobs = 1;
    const PageStudy golden = runPageStudy(config);

    TempPath path("real_study");
    CheckpointSession session(path.str(), "test", 1, config.seed);
    ScopedRunContext scoped(RunContext{&session, nullptr});
    const PageStudy viaSession = runPageStudy(config);

    BinaryWriter wg, ws;
    serializeStudy(golden, wg);
    serializeStudy(viaSession, ws);
    EXPECT_EQ(ws.data(), wg.data());
}

} // namespace
} // namespace aegis::sim
