/**
 * @file
 * Table 1 reproduction tests: hardware cost in bits per 512-bit block
 * for ECP, SAFER, Aegis, Aegis-rw and Aegis-rw-p at hard FTC 1..10.
 */

#include <gtest/gtest.h>

#include "aegis/cost.h"
#include "scheme/ecp.h"
#include "scheme/hamming.h"
#include "scheme/rdis.h"
#include "scheme/safer.h"

namespace aegis::core {
namespace {

TEST(Cost, SlopeCounts)
{
    EXPECT_EQ(slopesNeededBasic(1), 1u);
    EXPECT_EQ(slopesNeededBasic(7), 22u);
    EXPECT_EQ(slopesNeededBasic(8), 29u);
    EXPECT_EQ(slopesNeededBasic(10), 46u);
    EXPECT_EQ(slopesNeededRw(1), 1u);
    EXPECT_EQ(slopesNeededRw(8), 17u);
    EXPECT_EQ(slopesNeededRw(9), 21u);
    // §2.4: "for hard FTC of 10, Aegis needs 46 slopes while
    // Aegis-rw needs only 26 slopes".
    EXPECT_EQ(slopesNeededRw(10), 26u);
}

TEST(Cost, HardFtcPerHeight)
{
    EXPECT_EQ(hardFtcBasic(23), 7u);
    EXPECT_EQ(hardFtcBasic(29), 8u);
    EXPECT_EQ(hardFtcBasic(31), 8u);
    EXPECT_EQ(hardFtcBasic(37), 9u);
    EXPECT_EQ(hardFtcBasic(47), 10u);
    EXPECT_EQ(hardFtcBasic(61), 11u);
    EXPECT_EQ(hardFtcBasic(71), 12u);
    EXPECT_EQ(hardFtcRw(23), 9u);
    EXPECT_EQ(hardFtcRw(61), 15u);
    EXPECT_EQ(hardFtcRwP(23, 4), 9u);
    EXPECT_EQ(hardFtcRwP(23, 2), 5u);
    EXPECT_EQ(hardFtcRwP(61, 9), 15u);    // capped by rw FTC
}

TEST(Cost, MinimalHeightMatchesPaper)
{
    // "it provides minimally 23 groups for a 512-bit block" (§2.3).
    EXPECT_EQ(minimalHeight(512), 23u);
    EXPECT_EQ(minimalHeight(256), 17u);
    EXPECT_EQ(minimalHeight(32), 7u);    // Figure 2's 5x7
}

TEST(Cost, Table1EcpRow)
{
    const std::size_t expected[] = {11, 21, 31, 41, 51,
                                    61, 71, 81, 91, 101};
    for (std::size_t f = 1; f <= 10; ++f)
        EXPECT_EQ(scheme::EcpScheme::costBits(512, f), expected[f - 1]);
}

TEST(Cost, Table1SaferRow)
{
    // N = 2^(f-1) groups for hard FTC f (SAFER's FTC is fields + 1).
    const std::size_t expected[] = {1,  7,   14,  22,  35,
                                    55, 91,  159, 292, 552};
    for (std::size_t f = 1; f <= 10; ++f) {
        const std::size_t groups = 1ull << (f - 1);
        EXPECT_EQ(scheme::SaferScheme::costBits(512, groups),
                  expected[f - 1])
            << "SAFER" << groups;
    }
}

TEST(Cost, Table1AegisRow)
{
    const std::uint64_t expected[] = {23, 24, 25, 26, 27,
                                      27, 28, 34, 43, 53};
    const std::uint32_t expected_b[] = {23, 23, 23, 23, 23,
                                        23, 23, 29, 37, 47};
    for (std::uint32_t f = 1; f <= 10; ++f) {
        const CostPoint point = minimalCostBasic(512, f);
        EXPECT_EQ(point.bits, expected[f - 1]) << "FTC " << f;
        EXPECT_EQ(point.b, expected_b[f - 1]) << "FTC " << f;
    }
}

TEST(Cost, Table1AegisRwRow)
{
    // The paper lists 23,24,25,26,27,27,28,28,28,28. Our formula
    // agrees through FTC 9; at FTC 10 Aegis-rw needs 26 slopes, more
    // than B = 23 provides, so the formula-faithful answer uses
    // B = 29 and costs 34 (see DESIGN.md §4).
    const std::uint64_t expected[] = {23, 24, 25, 26, 27,
                                      27, 28, 28, 28, 34};
    for (std::uint32_t f = 1; f <= 10; ++f) {
        const CostPoint point = minimalCostRw(512, f);
        EXPECT_EQ(point.bits, expected[f - 1]) << "FTC " << f;
        if (f <= 9) {
            EXPECT_EQ(point.b, 23u);
        }
    }
}

TEST(Cost, Table1AegisRwPRow)
{
    const std::uint64_t expected[] = {1,  8,  9,  15, 15,
                                      21, 21, 27, 27, 32};
    for (std::uint32_t f = 1; f <= 10; ++f) {
        const CostPoint point = minimalCostRwP(512, f);
        EXPECT_EQ(point.bits, expected[f - 1]) << "FTC " << f;
    }
}

TEST(Cost, RdisOverheadsQuotedInPaper)
{
    // "With 256-bit data blocks, RDIS-3's space overhead is 25% of
    // data space. This overhead is reduced to 19% with 512-bit
    // blocks."
    const std::size_t c256 = scheme::RdisScheme::costBits(256, 16, 3);
    const std::size_t c512 = scheme::RdisScheme::costBits(512, 16, 3);
    EXPECT_EQ(c256, 65u);
    EXPECT_EQ(c512, 97u);
    EXPECT_NEAR(static_cast<double>(c256) / 256, 0.25, 0.01);
    EXPECT_NEAR(static_cast<double>(c512) / 512, 0.19, 0.01);
}

TEST(Cost, HammingYardstick)
{
    // (72,64) coding: 12.5% overhead, the paper's budget ceiling.
    scheme::HammingScheme ecc(512);
    EXPECT_EQ(ecc.overheadBits(), 64u);
    EXPECT_DOUBLE_EQ(static_cast<double>(ecc.overheadBits()) / 512,
                     0.125);
}

TEST(Cost, PaperAnecdotes)
{
    // §1.3 / §3.2 cross-checks: "with 31 groups Aegis can tolerate 8
    // faults ... using 32 groups SAFER can only tolerate 6".
    EXPECT_EQ(hardFtcBasic(31), 8u);
    scheme::SaferScheme safer32(512, 32, false);
    EXPECT_EQ(safer32.hardFtc(), 6u);
    // "Aegis 9x61 spends 67 bits ... SAFER64 spends 91 bits".
    EXPECT_EQ(costBitsBasic(61, hardFtcBasic(61)), 67u);
    EXPECT_EQ(scheme::SaferScheme::costBits(512, 64), 91u);
    // "Aegis 23x23 ... only 5.5% space overhead" (28/512).
    EXPECT_NEAR(static_cast<double>(costBitsBasic(23, 7)) / 512, 0.055,
                0.001);
    // "Aegis 17x31 uses only 7% of the memory as overhead" (36/512).
    EXPECT_NEAR(static_cast<double>(costBitsBasic(31, 8)) / 512, 0.07,
                0.003);
}

} // namespace
} // namespace aegis::core
