#!/bin/sh
# Kill-and-resume integration test.
#
# Runs a bench to completion for a golden manifest, re-runs it under
# AEGIS_CHAOS so the process is killed (as if SIGKILLed; no graceful
# shutdown) after N Monte-Carlo chunks, then resumes the checkpoint
# twice with different --jobs values. Both resumed manifests must be
# bit-identical to the golden one in every deterministic field (seed,
# table cells, metrics counters). Also checks that a corrupt
# checkpoint is rejected with a nonzero exit instead of silently
# producing wrong numbers.
#
# Usage: kill_resume_test.sh <bench-binary> <tools-dir>

set -u

BENCH=${1:?usage: kill_resume_test.sh <bench-binary> <tools-dir>}
TOOLS=${2:?usage: kill_resume_test.sh <bench-binary> <tools-dir>}
PYTHON=${PYTHON:-python3}
FLAGS="--blocks 96 --seed 7 --quiet"

WORK=$(mktemp -d) || exit 1
trap 'rm -rf "$WORK"' EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# 1. Golden: the uninterrupted run.
"$BENCH" $FLAGS --json "$WORK/golden.json" >/dev/null ||
    fail "golden run exited $?"

# 2. Chaos: die abruptly after 8 chunks, checkpointing every chunk.
AEGIS_CHAOS=kill-after-chunks=8 \
    "$BENCH" $FLAGS --checkpoint "$WORK/ck" --checkpoint-every 1 \
    >/dev/null 2>&1
STATUS=$?
[ "$STATUS" -eq 137 ] || fail "chaos kill exited $STATUS, want 137"
[ -s "$WORK/ck" ] || fail "chaos kill left no checkpoint"

# 3. Resume the same checkpoint with two different worker counts.
cp "$WORK/ck" "$WORK/ck2" || exit 1
"$BENCH" $FLAGS --checkpoint "$WORK/ck" --resume --jobs 1 \
    --json "$WORK/resume_j1.json" >/dev/null ||
    fail "resume with --jobs 1 exited $?"
"$BENCH" $FLAGS --checkpoint "$WORK/ck2" --resume --jobs 4 \
    --json "$WORK/resume_j4.json" >/dev/null ||
    fail "resume with --jobs 4 exited $?"

# 4. Resumed manifests are valid and bit-identical to the golden run.
"$PYTHON" "$TOOLS/validate_manifest.py" "$WORK/resume_j1.json" ||
    fail "resumed manifest fails schema validation"
"$PYTHON" "$TOOLS/compare_manifests.py" \
    "$WORK/golden.json" "$WORK/resume_j1.json" ||
    fail "resume with --jobs 1 diverged from the golden run"
"$PYTHON" "$TOOLS/compare_manifests.py" \
    "$WORK/golden.json" "$WORK/resume_j4.json" ||
    fail "resume with --jobs 4 diverged from the golden run"

# 5. A corrupt checkpoint must be rejected, not silently recomputed.
head -c 16 "$WORK/golden.json" > "$WORK/ck_bad"
"$BENCH" $FLAGS --checkpoint "$WORK/ck_bad" --resume \
    >/dev/null 2>"$WORK/bad.err"
STATUS=$?
[ "$STATUS" -ne 0 ] || fail "corrupt checkpoint accepted (exit 0)"
grep -q "ck_bad" "$WORK/bad.err" ||
    fail "corrupt-checkpoint error does not name the file"

# 6. A stale checkpoint (different flags) must be rejected too.
"$BENCH" --blocks 96 --seed 8 --quiet \
    --checkpoint "$WORK/ck" --resume >/dev/null 2>"$WORK/stale.err"
STATUS=$?
[ "$STATUS" -ne 0 ] || fail "stale checkpoint accepted (exit 0)"
grep -qi "cannot resume" "$WORK/stale.err" ||
    fail "stale-checkpoint error is not actionable"

echo "PASS kill-and-resume: resumed runs are bit-identical"
exit 0
