/**
 * @file
 * Cross-validation of the Monte-Carlo lifetime trackers against the
 * functional schemes: for the same fault sequence, a tracker that
 * reports "alive with zero failure probability" must correspond to a
 * functional scheme that services random writes successfully, and a
 * functional failure must be foreshadowed by the tracker (Dead, or a
 * positive failure probability).
 */

#include <memory>

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "pcm/fail_cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

using core::makeScheme;
using scheme::FaultVerdict;

struct Case
{
    const char *name;
    std::size_t blockBits;
};

class TrackerCrossValidation : public ::testing::TestWithParam<Case>
{};

TEST_P(TrackerCrossValidation, TrackerAgreesWithFunctionalScheme)
{
    const auto &param = GetParam();
    Rng rng(std::string(param.name).size() * 1000 + param.blockBits);

    for (int trial = 0; trial < 6; ++trial) {
        auto dir = std::make_shared<pcm::OracleFaultDirectory>();
        auto scheme = makeScheme(param.name, param.blockBits);
        scheme->attachDirectory(dir.get(), 0);
        // Generous labeling-sample budget so a sampled p of exactly 0
        // reliably means "essentially safe" in the assertions below.
        auto tracker = scheme->makeTracker({4096});
        pcm::CellArray cells(param.blockBits);

        bool functional_alive = true;
        for (std::uint32_t f = 0; f < 64 && functional_alive; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(
                    rng.nextBounded(param.blockBits));
            } while (cells.isStuck(pos));
            const bool stuck = rng.nextBool();
            cells.injectFault(pos, stuck);
            dir->record(0, {pos, stuck});

            const FaultVerdict verdict = tracker->onFault({pos, stuck});
            const double p = tracker->writeFailureProbability(rng);

            int failures = 0;
            for (int w = 0; w < 12; ++w) {
                const BitVector data =
                    BitVector::random(param.blockBits, rng);
                const auto outcome = scheme->write(cells, data);
                if (!outcome.ok) {
                    ++failures;
                    break;
                }
                ASSERT_EQ(scheme->read(cells), data)
                    << param.name << " decoded garbage";
            }

            if (verdict == FaultVerdict::Dead) {
                // A deterministically dead block must fail fast.
                EXPECT_GT(failures, 0)
                    << param.name << ": tracker dead, writes fine"
                    << " (fault " << f << ")";
                functional_alive = false;
            } else if (failures > 0) {
                // Functional failure must be foreshadowed by p > 0.
                EXPECT_GT(p, 0.0)
                    << param.name
                    << ": functional write failed at p == 0 (fault "
                    << f << ")";
                functional_alive = false;
            }
            // verdict Alive && p == 0 && no failures: consistent.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TrackerCrossValidation,
    ::testing::Values(Case{"none", 512}, Case{"ecp4", 512},
                      Case{"ecp6", 256}, Case{"safer32", 512},
                      Case{"safer16-cache", 256}, Case{"rdis3", 512},
                      Case{"hamming", 256}, Case{"aegis-23x23", 512},
                      Case{"aegis-9x61", 512}, Case{"aegis-12x23", 256},
                      Case{"aegis-rw-23x23", 512},
                      Case{"aegis-rw-p4-23x23", 512}),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string n = info.param.name;
        for (char &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::to_string(info.param.blockBits);
    });

TEST(Trackers, BasicAegisAmplifiedCellsAreFaultGroups)
{
    auto scheme = makeScheme("aegis-23x23", 512);
    auto tracker = scheme->makeTracker({});
    EXPECT_TRUE(tracker->amplifiedCells().empty());

    tracker->onFault({10, true});
    const auto hot = tracker->amplifiedCells();
    // One fault group of <= A = 23 members.
    EXPECT_GE(hot.size(), 1u);
    EXPECT_LE(hot.size(), 23u);
    // The fault's own position is a group member.
    EXPECT_NE(std::find(hot.begin(), hot.end(), 10u), hot.end());
}

TEST(Trackers, RwVariantsNeverAmplify)
{
    for (const char *name : {"aegis-rw-23x23", "aegis-rw-p4-23x23",
                             "rdis3", "safer32-cache"}) {
        auto scheme = makeScheme(name, 512);
        auto tracker = scheme->makeTracker({64});
        tracker->onFault({10, true});
        tracker->onFault({200, false});
        EXPECT_TRUE(tracker->amplifiedCells().empty()) << name;
    }
}

TEST(Trackers, BasicAegisSlopeSurvivesMoreFaultsThanGuarantee)
{
    auto scheme = makeScheme("aegis-9x61", 512);
    auto tracker = scheme->makeTracker({});
    Rng rng(13);
    std::uint32_t survived = 0;
    for (std::uint32_t f = 0; f < 512; ++f) {
        const auto pos = static_cast<std::uint32_t>(f * 97 % 512);
        if (tracker->onFault({pos, rng.nextBool()}) ==
            FaultVerdict::Dead) {
            break;
        }
        ++survived;
    }
    EXPECT_GT(survived, scheme->hardFtc());
    EXPECT_LT(survived, 128u);    // and it certainly cannot do 128
}

TEST(Trackers, RwFailureProbabilityGrowsWithFaults)
{
    auto scheme = makeScheme("aegis-rw-23x23", 512);
    auto tracker = scheme->makeTracker({512});
    Rng rng(17);
    double last_p = 0.0;
    std::uint32_t f = 0;
    while (f < 200 && last_p < 0.9) {
        std::uint32_t pos = (f * 131 + 7) % 512;
        tracker->onFault({pos, rng.nextBool()});
        last_p = tracker->writeFailureProbability(rng);
        ++f;
    }
    EXPECT_GE(last_p, 0.9) << "p never became critical";
    EXPECT_GT(f, scheme->hardFtc());
}

} // namespace
} // namespace aegis
