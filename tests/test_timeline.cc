/**
 * @file
 * Tests for deterministic time-series telemetry: the Monte-Carlo
 * chunk recorder (rows indexed by chunk, advisory wall_ms column),
 * the latency sim's fixed-tick sampler, and the log2-bucket timer
 * percentile estimates that feed the manifest's v4 timer section.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/timing/latency_sim.h"
#include "util/rng.h"

namespace aegis {
namespace {

class TimelineTest : public ::testing::Test
{
  protected:
    void TearDown() override { obs::disarmTimeline(); }
};

std::size_t
col(const obs::TimeSeries &s, const std::string &name)
{
    for (std::size_t i = 0; i < s.columns.size(); ++i)
        if (s.columns[i] == name)
            return i;
    ADD_FAILURE() << "no column " << name;
    return 0;
}

TEST_F(TimelineTest, DisarmedRecorderIgnoresSeries)
{
    ASSERT_FALSE(obs::timelineEnabled());
    obs::timelineBeginSeries("ignored", 4);
    obs::Metrics delta;
    obs::timelineChunkDone(0, 1, delta);
    EXPECT_TRUE(obs::takeTimelines().empty());
}

TEST_F(TimelineTest, ChunkRowsIndexedByChunkNotCompletionOrder)
{
    obs::armTimeline();
    obs::timelineBeginSeries("demo.block_study", 3);

    obs::Metrics delta;
    delta.counters[static_cast<std::size_t>(
        obs::Counter::FaultArrivals)] = 7;
    delta.counters[static_cast<std::size_t>(
        obs::Counter::ProgramPasses)] = 11;
    delta.counters[static_cast<std::size_t>(
        obs::Counter::AegisRepartitions)] = 2;
    delta.counters[static_cast<std::size_t>(
        obs::Counter::SaferRepartitions)] = 1;
    // Completion order 2 then 0; row order must stay 0,1,2.
    obs::timelineChunkDone(2, 16, delta);
    obs::timelineChunkDone(0, 16, delta, /*restored=*/true);

    const auto series = obs::takeTimelines();
    ASSERT_EQ(series.size(), 1u);
    const obs::TimeSeries &s = series[0];
    EXPECT_EQ(s.name, "demo.block_study");
    ASSERT_EQ(s.rows.size(), 3u);
    for (const auto &row : s.rows)
        ASSERT_EQ(row.size(), s.columns.size());

    EXPECT_EQ(s.rows[2][col(s, "chunk")], 2u);
    EXPECT_EQ(s.rows[2][col(s, "items")], 16u);
    EXPECT_EQ(s.rows[2][col(s, "faults")], 7u);
    EXPECT_EQ(s.rows[2][col(s, "program_passes")], 11u);
    EXPECT_EQ(s.rows[2][col(s, "repartitions")], 3u);
    // Restored chunks carry no fresh wall-clock stamp.
    EXPECT_EQ(s.rows[0][col(s, "wall_ms")], 0u);
    // Untouched chunk 1 stays pre-zeroed, keeping the grid fixed.
    for (const std::uint64_t v : s.rows[1])
        EXPECT_EQ(v, 0u);

    // takeTimelines drains.
    EXPECT_TRUE(obs::takeTimelines().empty());
}

TEST_F(TimelineTest, LatencySimSamplesOnFixedTickGrid)
{
    auto scheme = core::makeScheme("ecp6", 512);
    sim::timing::LatencySimConfig cfg;
    cfg.writes = 300;
    cfg.faultsPerKwrite = 200.0;
    cfg.timelineInterval = 500;

    const sim::timing::LatencySimResult a =
        sim::timing::runLatencySim(*scheme, cfg, Rng(5));
    ASSERT_FALSE(a.timeline.columns.empty());
    ASSERT_FALSE(a.timeline.rows.empty());
    const std::size_t tick = col(a.timeline, "tick");
    const std::size_t writes = col(a.timeline, "writes");
    std::uint64_t prev_tick = 0;
    std::uint64_t prev_writes = 0;
    for (std::size_t i = 0; i < a.timeline.rows.size(); ++i) {
        const auto &row = a.timeline.rows[i];
        ASSERT_EQ(row.size(), a.timeline.columns.size());
        // Every sample sits on the fixed tick grid except the final
        // one, taken at drain end to capture the finished totals.
        if (i + 1 < a.timeline.rows.size()) {
            EXPECT_EQ(row[tick] % cfg.timelineInterval, 0u);
        }
        EXPECT_GE(row[tick], prev_tick);
        EXPECT_GE(row[writes], prev_writes);
        prev_tick = row[tick];
        prev_writes = row[writes];
    }
    EXPECT_EQ(a.timeline.rows.back()[writes], cfg.writes);

    // Purely tick-driven sampling: a rerun reproduces every row.
    const sim::timing::LatencySimResult b =
        sim::timing::runLatencySim(*scheme, cfg, Rng(5));
    EXPECT_EQ(a.timeline.columns, b.timeline.columns);
    EXPECT_EQ(a.timeline.rows, b.timeline.rows);
}

TEST_F(TimelineTest, SamplingDisabledByDefault)
{
    auto scheme = core::makeScheme("none", 512);
    sim::timing::LatencySimConfig cfg;
    cfg.writes = 50;
    const sim::timing::LatencySimResult r =
        sim::timing::runLatencySim(*scheme, cfg, Rng(1));
    EXPECT_TRUE(r.timeline.columns.empty());
    EXPECT_TRUE(r.timeline.rows.empty());
}

TEST(ScopeQuantiles, Log2BucketEstimatesBracketTheSamples)
{
    obs::resetProcessMetrics();
    // 90 fast entries and 10 slow ones: p50 must sit in the fast
    // bucket, p99 in the slow one. Bucket upper bounds are 2^k - 1.
    for (int i = 0; i < 90; ++i)
        obs::recordTiming(obs::Scope::SchemeRead, 100);
    for (int i = 0; i < 10; ++i)
        obs::recordTiming(obs::Scope::SchemeRead, 5000);

    const auto q = obs::scopeQuantileEstimates();
    const obs::ScopeQuantiles &r =
        q[static_cast<std::size_t>(obs::Scope::SchemeRead)];
    EXPECT_EQ(r.p50Ns, 127u);     // 100 ns -> bucket [64, 127]
    EXPECT_EQ(r.p99Ns, 8191u);    // 5000 ns -> bucket [4096, 8191]
    EXPECT_LE(r.p50Ns, r.p95Ns);
    EXPECT_LE(r.p95Ns, r.p99Ns);

    // An untouched scope reports zero estimates.
    const obs::ScopeQuantiles &idle =
        q[static_cast<std::size_t>(obs::Scope::PageLife)];
    EXPECT_EQ(idle.p50Ns, 0u);
    EXPECT_EQ(idle.p99Ns, 0u);
    obs::resetProcessMetrics();
}

} // namespace
} // namespace aegis
