/**
 * @file
 * Tests for the cycle-level memory-controller model: single-request
 * latency arithmetic, row-buffer and bank behavior, read priority,
 * metadata-bus serialization, SchemeIoCost-driven write occupancy,
 * the sim_clock binding, latency quantiles, and end-to-end
 * determinism of runLatencySim.
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "sim/timing/clock.h"
#include "sim/timing/controller.h"
#include "sim/timing/latency_sim.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace aegis {
namespace {

using sim::MemOp;
using sim::MemRequest;
using sim::timing::LatencySimConfig;
using sim::timing::LatencySimResult;
using sim::timing::MemController;
using sim::timing::sim_clock;
using sim::timing::Tick;
using sim::timing::TimingConfig;

// 512-bit blocks -> 64 bytes per request; 64 blocks per 4KB page.
constexpr std::uint32_t kBlockBytes = 64;

pcm::Geometry
geom(std::uint32_t pages = 4)
{
    return pcm::Geometry{512, 4096, pages};
}

MemRequest
read(std::uint64_t block, Tick tick = 0)
{
    return MemRequest{block * kBlockBytes, MemOp::Read, tick};
}

MemRequest
write(std::uint64_t block, Tick tick = 0)
{
    return MemRequest{block * kBlockBytes, MemOp::Write, tick};
}

TEST(Controller, SingleReadLatency)
{
    const TimingConfig cfg; // defaults: tRead 50, tRowMiss 20, bus 4
    MemController c(cfg, geom());
    c.submit(read(0), {});
    c.drain();
    // Cold row buffer: miss + array read + bus transfer.
    const Tick want = cfg.tRowMiss + cfg.tRead + cfg.tBusTransfer;
    EXPECT_EQ(c.readLatency().total(), 1u);
    EXPECT_EQ(c.readLatency().countOf(static_cast<std::int64_t>(want)),
              1u);
    EXPECT_EQ(c.totals().reads, 1u);
    EXPECT_EQ(c.totals().rowMisses, 1u);
    EXPECT_EQ(c.lastCompletion(), want);
}

TEST(Controller, RowHitSkipsMissPenalty)
{
    const TimingConfig cfg;
    MemController c(cfg, geom());
    c.submit(read(0), {});
    c.submit(read(0), {}); // same block, same page: row hit
    c.drain();
    EXPECT_EQ(c.totals().rowMisses, 1u);
    const Tick first = cfg.tRowMiss + cfg.tRead + cfg.tBusTransfer;
    const Tick second = first + cfg.tRead + cfg.tBusTransfer;
    EXPECT_EQ(
        c.readLatency().countOf(static_cast<std::int64_t>(first)), 1u);
    EXPECT_EQ(
        c.readLatency().countOf(static_cast<std::int64_t>(second)),
        1u);
}

TEST(Controller, BanksOverlap)
{
    // Consecutive blocks interleave across banks, so two reads issued
    // together finish with identical (unqueued) latency.
    const TimingConfig cfg;
    MemController c(cfg, geom());
    c.submit(read(0), {});
    c.submit(read(1), {});
    c.drain();
    const Tick want = cfg.tRowMiss + cfg.tRead + cfg.tBusTransfer;
    EXPECT_EQ(c.readLatency().countOf(static_cast<std::int64_t>(want)),
              2u);
}

TEST(Controller, ReadsPrioritizedOverQueuedWrites)
{
    const TimingConfig cfg;
    MemController c(cfg, geom());
    // Same bank, same page; the write was submitted first but the
    // read must retire first (write queue far below the drain mark).
    c.submit(write(0), {});
    c.submit(read(0), {});
    c.drain();
    const Tick read_done = cfg.tRowMiss + cfg.tRead + cfg.tBusTransfer;
    EXPECT_EQ(c.readLatency().maxKey(),
              static_cast<std::int64_t>(read_done));
    EXPECT_GT(c.writeLatency().minKey(),
              static_cast<std::int64_t>(read_done));
}

TEST(Controller, WriteOccupancyFollowsSchemeIoCost)
{
    const TimingConfig cfg;
    MemController c(cfg, geom());
    scheme::SchemeIoCost io;
    io.programPasses = 3;
    io.verifyReads = 2;
    io.repartitions = 1;
    c.submit(write(0), io);
    c.drain();
    const Tick want = cfg.tRowMiss + 3 * cfg.tProgramPass +
                      2 * cfg.tVerifyRead + cfg.tRepartitionStall +
                      cfg.tBusTransfer;
    EXPECT_EQ(
        c.writeLatency().countOf(static_cast<std::int64_t>(want)), 1u);
    EXPECT_EQ(c.totals().programPasses, 3u);
    EXPECT_EQ(c.totals().verifyReads, 2u);
    EXPECT_EQ(c.totals().repartitionStalls, 1u);
}

TEST(Controller, MetadataLookupsSerializeOnSharedBus)
{
    const TimingConfig cfg;
    MemController c(cfg, geom());
    scheme::SchemeIoCost io;
    io.metadataLookups = 1;
    // Different banks, but the fail-cache probes share one bus: the
    // second write's array work cannot start before the first
    // write's probe releases it.
    c.submit(write(0), io);
    c.submit(write(1), io);
    c.drain();
    const Tick array = cfg.tRowMiss + cfg.tProgramPass +
                       cfg.tBusTransfer; // passes clamp to 1
    const Tick first = cfg.tFailCacheLookup + array;
    const Tick second = 2 * cfg.tFailCacheLookup + array;
    EXPECT_EQ(
        c.writeLatency().countOf(static_cast<std::int64_t>(first)),
        1u);
    EXPECT_EQ(
        c.writeLatency().countOf(static_cast<std::int64_t>(second)),
        1u);
    EXPECT_EQ(c.totals().failCacheLookups, 2u);
}

TEST(Controller, SubmitNeverDropsWhenQueueFills)
{
    TimingConfig cfg;
    cfg.banks = 1;
    cfg.queueDepth = 2;
    MemController c(cfg, geom());
    for (std::uint64_t i = 0; i < 10; ++i)
        c.submit(write(0, i), {});
    c.drain();
    EXPECT_EQ(c.totals().writes, 10u);
    EXPECT_EQ(c.writeLatency().total(), 10u);
}

TEST(SimClock, BindingExposesControllerTicks)
{
    EXPECT_EQ(sim_clock::now(), 0u); // nothing bound on this thread
    const TimingConfig cfg;
    MemController c(cfg, geom());
    {
        const sim_clock::Binding bind(c.tickSource());
        EXPECT_EQ(sim_clock::now(), 0u);
        c.submit(read(0), {});
        c.drain();
        EXPECT_EQ(sim_clock::now(), c.lastCompletion());
    }
    EXPECT_EQ(sim_clock::now(), 0u); // unbound again
}

TEST(HistogramQuantiles, PercentileConvention)
{
    Histogram h;
    for (std::int64_t k = 1; k <= 100; ++k)
        h.add(k);
    EXPECT_EQ(h.quantileKey(0.0), 1);
    EXPECT_EQ(h.quantileKey(0.5), 50);
    EXPECT_EQ(h.quantileKey(0.99), 99);
    EXPECT_EQ(h.quantileKey(1.0), 100);

    Histogram skew; // 99 fast requests, one slow outlier
    skew.add(10, 99);
    skew.add(5000);
    EXPECT_EQ(skew.quantileKey(0.5), 10);
    EXPECT_EQ(skew.quantileKey(0.99), 10);
    EXPECT_EQ(skew.quantileKey(1.0), 5000);
}

LatencySimConfig
smallSim(const char *trace, double faults_per_kwrite)
{
    LatencySimConfig cfg;
    cfg.traceSpec = trace;
    cfg.shape.pages = 4;
    cfg.shape.readFraction = 0.5;
    cfg.shape.arrivalGap = 40;
    cfg.writes = 200;
    cfg.faultsPerKwrite = faults_per_kwrite;
    return cfg;
}

TEST(LatencySim, BitIdenticalAcrossRuns)
{
    const auto proto = core::makeScheme("aegis-9x61", 512);
    const LatencySimConfig cfg = smallSim("uniform", 100);
    const Rng stream = Rng(7).split(3);
    const LatencySimResult a =
        sim::timing::runLatencySim(*proto, cfg, stream);
    const LatencySimResult b =
        sim::timing::runLatencySim(*proto, cfg, stream);
    EXPECT_EQ(a.readLatency.items(), b.readLatency.items());
    EXPECT_EQ(a.writeLatency.items(), b.writeLatency.items());
    EXPECT_EQ(a.elapsedTicks, b.elapsedTicks);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.totals.failCacheLookups, b.totals.failCacheLookups);
    EXPECT_EQ(a.totals.repartitionStalls, b.totals.repartitionStalls);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
}

TEST(LatencySim, FaultsRaiseWriteWork)
{
    // With faults injected, the partition scheme re-partitions and
    // re-programs; the controller must see that as extra occupancy.
    // SAFER re-partitions on (nearly) every fault its busy blocks
    // accumulate, so the signal is reliable at this small scale.
    const auto proto = core::makeScheme("safer64-cache", 512);
    const Rng stream = Rng(11).split(0);
    const LatencySimResult clean = sim::timing::runLatencySim(
        *proto, smallSim("uniform", 0), stream);
    const LatencySimResult faulty = sim::timing::runLatencySim(
        *proto, smallSim("uniform", 400), stream);
    EXPECT_EQ(clean.faultsInjected, 0u);
    EXPECT_GT(faulty.faultsInjected, 0u);
    EXPECT_EQ(clean.totals.repartitionStalls, 0u);
    EXPECT_GT(faulty.totals.repartitionStalls, 0u);
    EXPECT_GE(faulty.writeP99(), clean.writeP99());
}

TEST(LatencySim, DirectorySchemeGeneratesMetadataTraffic)
{
    // SAFER probes its fail cache on every write; the none scheme
    // must generate zero metadata-bus events.
    const Rng stream = Rng(13).split(0);
    const LatencySimConfig cfg = smallSim("hotcold:0.1:0.9", 50);
    const auto safer = core::makeScheme("safer64-cache", 512);
    const auto none = core::makeScheme("none", 512);
    const LatencySimResult with_cache =
        sim::timing::runLatencySim(*safer, cfg, stream);
    const LatencySimResult bare =
        sim::timing::runLatencySim(*none, cfg, stream);
    EXPECT_GT(with_cache.totals.failCacheLookups, 0u);
    EXPECT_EQ(bare.totals.failCacheLookups, 0u);
    EXPECT_EQ(bare.totals.repartitionStalls, 0u);
}

TEST(LatencySim, ReadsAndWritesBothFlow)
{
    const auto proto = core::makeScheme("ecp6", 512);
    const LatencySimResult r = sim::timing::runLatencySim(
        *proto, smallSim("uniform", 0), Rng(5).split(0));
    EXPECT_EQ(r.totals.writes, 200u);
    EXPECT_GT(r.totals.reads, 0u);
    EXPECT_GT(r.readP50(), 0);
    EXPECT_GE(r.readP99(), r.readP50());
    EXPECT_GE(r.writeP99(), r.writeP50());
    EXPECT_GT(r.writeBytesPerKilotick(), 0.0);
    EXPECT_EQ(r.bytesWritten, 200u * 64u);
}

} // namespace
} // namespace aegis
