/**
 * @file
 * Unit and property tests for the SAFER baseline.
 */

#include <gtest/gtest.h>

#include "pcm/fail_cache.h"
#include "scheme/safer.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::scheme {
namespace {

TEST(SaferPartition, GroupOfExtractsSelectedBits)
{
    SaferPartition part(512, 5, false);
    EXPECT_EQ(part.groupCount(), 32u);
    EXPECT_EQ(part.addressBits(), 9u);
    // Empty vector: everything in group 0.
    EXPECT_EQ(part.groupOf(0), 0u);
    EXPECT_EQ(part.groupOf(511), 0u);

    std::uint32_t reps = 0;
    pcm::FaultSet faults{{0b000000001, false}, {0b000000000, false}};
    ASSERT_TRUE(part.separate(faults, reps));
    ASSERT_EQ(part.fields().size(), 1u);
    EXPECT_EQ(part.fields()[0], 0u);    // lowest differing bit
    EXPECT_EQ(part.groupOf(1), 1u);
    EXPECT_EQ(part.groupOf(0), 0u);
    EXPECT_EQ(reps, 1u);
}

TEST(SaferPartition, RefinementPreservesSeparation)
{
    SaferPartition part(512, 5, false);
    Rng rng(11);
    pcm::FaultSet faults;
    std::uint32_t reps = 0;
    for (int i = 0; i < 6; ++i) {
        // Insert random distinct fault positions one at a time.
        std::uint32_t pos;
        bool dup;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(512));
            dup = false;
            for (const auto &f : faults)
                dup |= f.pos == pos;
        } while (dup);
        faults.push_back({pos, rng.nextBool()});
        ASSERT_TRUE(part.separate(faults, reps)) << "fault " << i;
        // All faults in pairwise-distinct groups.
        for (std::size_t a = 0; a < faults.size(); ++a) {
            for (std::size_t b = a + 1; b < faults.size(); ++b) {
                EXPECT_NE(part.groupOf(faults[a].pos),
                          part.groupOf(faults[b].pos));
            }
        }
    }
}

TEST(SaferPartition, GreedyGuaranteesKPlusOneFaults)
{
    // Hard FTC property: k fields always separate k+1 faults no
    // matter the arrival order (refinement never merges groups).
    Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        SaferPartition part(512, 5, false);
        pcm::FaultSet faults;
        std::uint32_t reps = 0;
        for (int f = 0; f < 6; ++f) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
                dup = false;
                for (const auto &existing : faults)
                    dup |= existing.pos == pos;
            } while (dup);
            faults.push_back({pos, false});
            ASSERT_TRUE(part.separate(faults, reps))
                << "trial " << trial << " fault " << f;
        }
    }
}

TEST(SaferPartition, ExhaustiveSearchIsComplete)
{
    // Whenever *any* field subset separates the faults, the
    // cache-assisted search must find one (brute-force comparison on
    // a small block).
    Rng rng(101);
    for (int trial = 0; trial < 300; ++trial) {
        const std::size_t nfaults = 2 + rng.nextBounded(5);
        pcm::FaultSet faults;
        for (std::size_t i = 0; i < nfaults; ++i) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(32));
                dup = false;
                for (const auto &f : faults)
                    dup |= f.pos == pos;
            } while (dup);
            faults.push_back({pos, false});
        }

        // Brute force: any subset of {0..4} with <= 2 bits that keeps
        // all fault addresses distinct?
        bool any = false;
        for (std::uint32_t mask = 0; mask < 32 && !any; ++mask) {
            if (__builtin_popcount(mask) > 2)
                continue;
            bool ok = true;
            for (std::size_t i = 0; i < faults.size() && ok; ++i) {
                for (std::size_t j = i + 1; j < faults.size(); ++j) {
                    if (((faults[i].pos ^ faults[j].pos) & mask) == 0) {
                        ok = false;
                        break;
                    }
                }
            }
            any |= ok;
        }

        SaferPartition cached(32, 2, true);
        std::uint32_t reps = 0;
        EXPECT_EQ(cached.separate(faults, reps), any)
            << "trial " << trial;
    }
}

TEST(Safer, MetadataBasics)
{
    SaferScheme safer(512, 32, false);
    EXPECT_EQ(safer.name(), "safer32");
    EXPECT_EQ(safer.overheadBits(), 55u);
    EXPECT_EQ(safer.hardFtc(), 6u);
    EXPECT_FALSE(safer.requiresDirectory());

    SaferScheme cached(512, 64, true);
    EXPECT_EQ(cached.name(), "safer64-cache");
    EXPECT_EQ(cached.overheadBits(), 91u);
    EXPECT_TRUE(cached.requiresDirectory());
}

TEST(Safer, CleanRoundTrip)
{
    SaferScheme safer(256, 16, false);
    pcm::CellArray cells(256);
    Rng rng(17);
    for (int i = 0; i < 10; ++i) {
        const BitVector data = BitVector::random(256, rng);
        EXPECT_TRUE(safer.write(cells, data).ok);
        EXPECT_EQ(safer.read(cells), data);
    }
}

TEST(Safer, ToleratesHardFtcFaultsWithRandomData)
{
    Rng rng(19);
    for (int trial = 0; trial < 30; ++trial) {
        SaferScheme safer(512, 32, false);
        pcm::CellArray cells(512);
        for (int f = 0; f < 6; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
            } while (cells.isStuck(pos));
            cells.injectFault(pos, rng.nextBool());
            for (int w = 0; w < 4; ++w) {
                const BitVector data = BitVector::random(512, rng);
                ASSERT_TRUE(safer.write(cells, data).ok);
                ASSERT_EQ(safer.read(cells), data);
            }
        }
    }
}

TEST(Safer, InversionMasksStuckAtWrongFault)
{
    SaferScheme safer(64, 8, false);
    pcm::CellArray cells(64);
    cells.injectFault(5, true);
    BitVector zeros(64);
    const WriteOutcome outcome = safer.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_GE(outcome.programPasses, 2u);    // plain + inversion pass
    EXPECT_EQ(outcome.newFaults, 1u);
    EXPECT_EQ(safer.read(cells), zeros);
}

TEST(Safer, CacheVariantWritesKnownFaultsInOnePass)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    SaferScheme safer(256, 16, true);
    safer.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(256);

    cells.injectFault(33, true);
    dir->record(0, {33, true});
    BitVector zeros(256);
    const WriteOutcome outcome = safer.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.programPasses, 1u);
    EXPECT_EQ(safer.read(cells), zeros);
}

TEST(Safer, CacheOutlivesGreedyOnFaultFloods)
{
    // With identical fault sequences the exhaustive (cache) variant
    // must never die before the greedy one.
    Rng rng(23);
    int cache_wins = 0;
    for (int trial = 0; trial < 40; ++trial) {
        SaferPartition greedy(512, 5, false);
        SaferPartition cached(512, 5, true);
        pcm::FaultSet faults;
        std::uint32_t r1 = 0, r2 = 0;
        bool greedy_alive = true;
        int greedy_died_at = -1;
        for (int f = 0; f < 40; ++f) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
                dup = false;
                for (const auto &existing : faults)
                    dup |= existing.pos == pos;
            } while (dup);
            faults.push_back({pos, false});
            if (greedy_alive && !greedy.separate(faults, r1)) {
                greedy_alive = false;
                greedy_died_at = f;
            }
            if (!cached.separate(faults, r2)) {
                ASSERT_FALSE(greedy_alive)
                    << "cache variant died before greedy";
                break;
            }
            if (!greedy_alive) {
                ++cache_wins;
                break;
            }
        }
        (void)greedy_died_at;
    }
    // The exhaustive search should rescue at least some floods.
    EXPECT_GT(cache_wins, 0);
}

TEST(Safer, RejectsBadConfigs)
{
    EXPECT_THROW(SaferScheme(500, 32, false), ConfigError);
    EXPECT_THROW(SaferScheme(512, 33, false), ConfigError);
    EXPECT_THROW(SaferScheme(512, 1024, false), ConfigError);
}

TEST(Safer, TrackerGreedyDiesExactlyWhenPartitionDoes)
{
    Rng rng(29);
    for (int trial = 0; trial < 20; ++trial) {
        SaferScheme safer(512, 16, false);
        auto tracker = safer.makeTracker({});
        SaferPartition shadow(512, 4, false);
        pcm::FaultSet faults;
        std::uint32_t reps = 0;
        for (int f = 0; f < 30; ++f) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
                dup = false;
                for (const auto &existing : faults)
                    dup |= existing.pos == pos;
            } while (dup);
            faults.push_back({pos, false});
            const bool shadow_alive = shadow.separate(faults, reps);
            const bool tracker_alive =
                tracker->onFault(faults.back()) == FaultVerdict::Alive;
            ASSERT_EQ(shadow_alive, tracker_alive)
                << "trial " << trial << " fault " << f;
            if (!shadow_alive)
                break;
        }
    }
}

TEST(Safer, TrackerAmplifiedCellsCoverFaultGroups)
{
    SaferScheme safer(512, 32, false);
    auto tracker = safer.makeTracker({});
    EXPECT_TRUE(tracker->amplifiedCells().empty());
    tracker->onFault({100, true});
    const auto hot = tracker->amplifiedCells();
    // One fault, vector still empty -> a single group = whole block.
    EXPECT_EQ(hot.size(), 512u);

    SaferScheme cached(512, 32, true);
    auto cache_tracker = cached.makeTracker({});
    cache_tracker->onFault({100, true});
    EXPECT_TRUE(cache_tracker->amplifiedCells().empty());
}

} // namespace
} // namespace aegis::scheme
