/**
 * @file
 * Unit tests for pcm/address geometry arithmetic.
 */

#include <gtest/gtest.h>

#include "pcm/address.h"

namespace aegis::pcm {
namespace {

TEST(Geometry, PaperDefaults)
{
    const Geometry geom{512, 4096, 2048};    // the paper's 8MB memory
    EXPECT_EQ(geom.pageBits(), 32768u);
    EXPECT_EQ(geom.blocksPerPage(), 64u);
    EXPECT_EQ(geom.totalBlocks(), 131072u);
    EXPECT_EQ(geom.totalBits(), 8ull * 1024 * 1024 * 8);
}

TEST(Geometry, CacheLineMemoryBlocks)
{
    // The paper's alternative memory-block size: 256-byte lines.
    const Geometry geom{256, 256, 16};
    EXPECT_EQ(geom.blocksPerPage(), 8u);
    EXPECT_EQ(geom.totalBlocks(), 128u);
}

TEST(Geometry, BlockIdRoundTrip)
{
    const Geometry geom{512, 4096, 32};
    for (std::uint32_t p = 0; p < geom.pages; p += 7) {
        for (std::uint32_t b = 0; b < geom.blocksPerPage(); b += 5) {
            const std::uint64_t id = geom.blockId(p, b);
            EXPECT_EQ(geom.pageOfBlock(id), p);
            EXPECT_EQ(geom.blockInPage(id), b);
        }
    }
    EXPECT_EQ(geom.blockId(0, 0), 0u);
    EXPECT_EQ(geom.blockId(1, 0), 64u);
}

TEST(Geometry, RejectsNonDividingBlockSize)
{
    const Geometry geom{384, 4096, 1};
    EXPECT_THROW(geom.blocksPerPage(), ConfigError);
}

TEST(Geometry, OutOfRangeBlockAddress)
{
    const Geometry geom{512, 4096, 2};
    EXPECT_THROW(geom.blockId(2, 0), InternalError);
    EXPECT_THROW(geom.blockId(0, 64), InternalError);
}

} // namespace
} // namespace aegis::pcm
