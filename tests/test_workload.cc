/**
 * @file
 * Unit tests for sim/workload and the memory-survival runner.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/workload.h"
#include "util/error.h"

namespace aegis::sim {
namespace {

TEST(Workload, PerfectIsUniform)
{
    PerfectWearLeveling wl;
    Rng rng(1);
    const auto rates = wl.pageRates(64, rng);
    ASSERT_EQ(rates.size(), 64u);
    for (double r : rates)
        EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(Workload, SkewAveragesToOne)
{
    ResidualSkewWearLeveling wl(0.3);
    Rng rng(2);
    const auto rates = wl.pageRates(256, rng);
    double sum = 0, lo = 1e9, hi = 0;
    for (double r : rates) {
        sum += r;
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    EXPECT_NEAR(sum / 256, 1.0, 1e-9);
    EXPECT_LT(lo, 0.85);
    EXPECT_GT(hi, 1.15);
    EXPECT_GT(lo, 0.0);
}

TEST(Workload, ZipfIsSkewedAndNormalized)
{
    ZipfWorkload wl(1.0);
    Rng rng(3);
    const auto rates = wl.pageRates(128, rng);
    double sum = 0, hi = 0;
    for (double r : rates) {
        sum += r;
        hi = std::max(hi, r);
    }
    EXPECT_NEAR(sum / 128, 1.0, 1e-9);
    // The hottest page is far above average under Zipf(1).
    EXPECT_GT(hi, 5.0);
}

TEST(Workload, FactoryParsesSpecs)
{
    EXPECT_EQ(makeWorkload("perfect")->name(), "perfect");
    EXPECT_EQ(makeWorkload("skew:0.25")->name().substr(0, 5), "skew:");
    EXPECT_EQ(makeWorkload("zipf:1.5")->name().substr(0, 5), "zipf:");
    EXPECT_THROW(makeWorkload("bogus"), ConfigError);
    EXPECT_THROW(makeWorkload("zipf:x"), ConfigError);
    EXPECT_THROW(makeWorkload("skew:2.0"), ConfigError);
}

TEST(MemorySurvival, PerfectMatchesPageStudyCurve)
{
    ExperimentConfig cfg;
    cfg.scheme = "ecp4";
    cfg.pages = 12;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;

    const PageStudy study = runPageStudy(cfg);
    PerfectWearLeveling perfect;
    const SurvivalCurve curve = runMemorySurvival(cfg, perfect);
    EXPECT_DOUBLE_EQ(curve.timeToFraction(0.5),
                     study.survival.timeToFraction(0.5));
}

TEST(MemorySurvival, SkewAcceleratesFirstDeaths)
{
    // Under Zipf traffic the hot pages die far earlier than any page
    // does under perfect leveling, even though cold pages outlive the
    // uniform case: the onset of page loss is what wear leveling
    // protects.
    ExperimentConfig cfg;
    cfg.scheme = "aegis-12x23";
    cfg.blockBits = 256;
    cfg.pages = 24;
    cfg.pageBytes = 1024;
    cfg.lifetimeMean = 1e6;

    PerfectWearLeveling perfect;
    ZipfWorkload zipf(1.0);
    const double first_perfect =
        runMemorySurvival(cfg, perfect).timeToFraction(0.9);
    const double first_zipf =
        runMemorySurvival(cfg, zipf).timeToFraction(0.9);
    EXPECT_LT(first_zipf, first_perfect);
}

} // namespace
} // namespace aegis::sim
