/**
 * @file
 * Property tests for the Aegis partition scheme — Theorems 1 and 2 of
 * the paper, plus the geometry of Figure 2.
 */

#include <set>

#include <gtest/gtest.h>

#include "aegis/collision_rom.h"
#include "aegis/partition.h"
#include "util/error.h"

namespace aegis::core {
namespace {

struct Formation
{
    std::uint32_t a, b, n;
};

/** Every A x B formation the paper evaluates, plus the Fig. 2 demo. */
const Formation kPaperFormations[] = {
    {5, 7, 32},      // Figure 2
    {23, 23, 512},   {17, 31, 512}, {9, 61, 512}, {8, 71, 512},
    {18, 29, 512},   {14, 37, 512}, {11, 47, 512},
    {12, 23, 256},   {9, 31, 256},
};

class PartitionTheorems : public ::testing::TestWithParam<Formation>
{};

TEST_P(PartitionTheorems, GeometryConstraintsHold)
{
    const auto &[a, b, n] = GetParam();
    const Partition part(a, b, n);
    EXPECT_EQ(part.a(), a);
    EXPECT_EQ(part.b(), b);
    // (A-1) * B < n <= A * B.
    EXPECT_LT((a - 1) * b, n);
    EXPECT_LE(n, a * b);
}

TEST_P(PartitionTheorems, Theorem1EveryPointInExactlyOneGroup)
{
    const auto &[a, b, n] = GetParam();
    const Partition part(a, b, n);
    for (std::uint32_t k = 0; k < part.slopes(); ++k) {
        std::vector<int> owner(n, -1);
        for (std::uint32_t y = 0; y < part.groups(); ++y) {
            for (std::uint32_t pos : part.groupMembers(y, k)) {
                ASSERT_EQ(owner[pos], -1)
                    << "bit " << pos << " in two groups under slope "
                    << k;
                owner[pos] = static_cast<int>(y);
            }
        }
        for (std::uint32_t pos = 0; pos < n; ++pos) {
            ASSERT_NE(owner[pos], -1)
                << "bit " << pos << " unassigned under slope " << k;
            ASSERT_EQ(static_cast<std::uint32_t>(owner[pos]),
                      part.groupOf(pos, k));
        }
    }
}

TEST_P(PartitionTheorems, GroupsHaveAtMostOnePointPerColumn)
{
    const auto &[a, b, n] = GetParam();
    const Partition part(a, b, n);
    for (std::uint32_t k = 0; k < part.slopes(); ++k) {
        for (std::uint32_t y = 0; y < part.groups(); ++y) {
            std::set<std::uint32_t> columns;
            for (std::uint32_t pos : part.groupMembers(y, k)) {
                EXPECT_TRUE(columns.insert(part.columnOf(pos)).second);
            }
            EXPECT_LE(columns.size(), a);
        }
    }
}

TEST_P(PartitionTheorems, Theorem2PairsCollideOnAtMostOneSlope)
{
    const auto &[a, b, n] = GetParam();
    (void)a;
    const Partition part = Partition::forHeight(b, n);
    // Exhaustive over pairs for the small formations, strided for the
    // larger ones to keep the test quick.
    const std::uint32_t stride = n > 128 ? 7 : 1;
    for (std::uint32_t i = 0; i < n; i += 1) {
        for (std::uint32_t j = i + 1; j < n; j += stride) {
            std::uint32_t collisions = 0, where = b;
            for (std::uint32_t k = 0; k < part.slopes(); ++k) {
                if (part.groupOf(i, k) == part.groupOf(j, k)) {
                    ++collisions;
                    where = k;
                }
            }
            const bool same_column =
                part.columnOf(i) == part.columnOf(j);
            if (same_column) {
                ASSERT_EQ(collisions, 0u)
                    << i << "," << j << " same column must not collide";
                ASSERT_EQ(part.collisionSlope(i, j), b);
            } else {
                ASSERT_EQ(collisions, 1u)
                    << i << "," << j << " must collide exactly once";
                ASSERT_EQ(part.collisionSlope(i, j), where);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PaperFormations, PartitionTheorems,
                         ::testing::ValuesIn(kPaperFormations));

TEST(Partition, Figure2Geometry)
{
    // The paper's 32-bit example: a 5 x 7 rectangle, 7 groups of at
    // most 5 bits, 3 unmapped positions at the top of the last column.
    const Partition part(5, 7, 32);
    EXPECT_EQ(part.slopes(), 7u);
    EXPECT_EQ(part.groups(), 7u);
    std::size_t mapped = 0;
    for (std::uint32_t y = 0; y < 7; ++y)
        mapped += part.groupMembers(y, 0).size();
    EXPECT_EQ(mapped, 32u);
    // Under slope 0 a group is a horizontal line: bits with equal row.
    for (std::uint32_t pos = 0; pos < 32; ++pos)
        EXPECT_EQ(part.groupOf(pos, 0), part.rowOf(pos));
}

TEST(Partition, ForHeightPicksMinimalWidth)
{
    EXPECT_EQ(Partition::forHeight(61, 512).a(), 9u);
    EXPECT_EQ(Partition::forHeight(31, 512).a(), 17u);
    EXPECT_EQ(Partition::forHeight(23, 512).a(), 23u);
    EXPECT_EQ(Partition::forHeight(23, 256).a(), 12u);
    EXPECT_EQ(Partition::forHeight(31, 256).a(), 9u);
    EXPECT_EQ(Partition::forHeight(71, 512).a(), 8u);
}

TEST(Partition, RejectsIllegalFormations)
{
    EXPECT_THROW(Partition(8, 64, 512), ConfigError);     // B not prime
    EXPECT_THROW(Partition(24, 23, 512), ConfigError);    // A > B
    EXPECT_THROW(Partition(4, 61, 512), ConfigError);     // too small
    EXPECT_THROW(Partition(10, 61, 512), ConfigError);    // too wide
}

TEST(Partition, SlopeChangesSeparateAnyCoGroupPair)
{
    // Direct statement of Theorem 2 for a mid-size formation.
    const Partition part = Partition::forHeight(31, 512);
    for (std::uint32_t y = 0; y < part.groups(); ++y) {
        const auto members = part.groupMembers(y, 4);
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                for (std::uint32_t k = 0; k < part.slopes(); ++k) {
                    if (k == 4)
                        continue;
                    EXPECT_NE(part.groupOf(members[i], k),
                              part.groupOf(members[j], k));
                }
            }
        }
    }
}

TEST(CollisionRom, MatchesPartitionMath)
{
    const Partition part = Partition::forHeight(23, 256);
    const CollisionRom rom(part);
    for (std::uint32_t i = 0; i < 256; i += 3) {
        for (std::uint32_t j = 0; j < 256; j += 5) {
            if (i == j)
                continue;
            EXPECT_EQ(rom.lookup(i, j), part.collisionSlope(i, j));
            EXPECT_EQ(rom.lookup(i, j), rom.lookup(j, i));
        }
    }
}

TEST(CollisionRom, SizeMatchesPaperFormula)
{
    // n x n x ceil(log2 B) bits.
    const Partition part = Partition::forHeight(61, 512);
    const CollisionRom rom(part);
    EXPECT_EQ(rom.sizeBits(), 512ull * 512ull * 6ull);
}

} // namespace
} // namespace aegis::core
