/**
 * @file
 * Unit tests for pcm/cell_array: stuck-at semantics, differential
 * writes and wear accounting.
 */

#include <gtest/gtest.h>

#include "pcm/cell_array.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::pcm {
namespace {

TEST(CellArray, StartsZeroedAndHealthy)
{
    CellArray cells(16);
    EXPECT_EQ(cells.size(), 16u);
    EXPECT_EQ(cells.faultCount(), 0u);
    EXPECT_TRUE(cells.read().none());
    EXPECT_EQ(cells.totalCellWrites(), 0u);
}

TEST(CellArray, ProgramAndRead)
{
    CellArray cells(8);
    cells.programBit(3, true);
    EXPECT_TRUE(cells.readBit(3));
    EXPECT_FALSE(cells.readBit(2));
    EXPECT_EQ(cells.totalCellWrites(), 1u);
    EXPECT_EQ(cells.cellWritesAt(3), 1u);
}

TEST(CellArray, StuckCellIgnoresWritesButCountsWear)
{
    CellArray cells(8);
    cells.injectFault(2, true);
    EXPECT_TRUE(cells.readBit(2));
    cells.programBit(2, false);
    EXPECT_TRUE(cells.readBit(2));    // still stuck at 1
    EXPECT_EQ(cells.cellWritesAt(2), 1u);
}

TEST(CellArray, InjectFaultAtCurrentValue)
{
    CellArray cells(8);
    cells.programBit(5, true);
    cells.injectFaultAtCurrentValue(5);
    EXPECT_TRUE(cells.isStuck(5));
    EXPECT_TRUE(cells.readBit(5));
    cells.programBit(5, false);
    EXPECT_TRUE(cells.readBit(5));
}

TEST(CellArray, ClearFaultKeepsStuckValueVisible)
{
    CellArray cells(4);
    cells.injectFault(1, true);
    cells.clearFault(1);
    EXPECT_FALSE(cells.isStuck(1));
    EXPECT_TRUE(cells.readBit(1));
    cells.programBit(1, false);
    EXPECT_FALSE(cells.readBit(1));
    EXPECT_EQ(cells.faultCount(), 0u);
}

TEST(CellArray, FaultListIsSorted)
{
    CellArray cells(32);
    cells.injectFault(20, false);
    cells.injectFault(3, true);
    cells.injectFault(11, true);
    const FaultSet faults = cells.faults();
    ASSERT_EQ(faults.size(), 3u);
    EXPECT_EQ(faults[0].pos, 3u);
    EXPECT_TRUE(faults[0].stuck);
    EXPECT_EQ(faults[1].pos, 11u);
    EXPECT_EQ(faults[2].pos, 20u);
    EXPECT_FALSE(faults[2].stuck);
}

TEST(CellArray, DoubleInjectionCountsOnce)
{
    CellArray cells(8);
    cells.injectFault(4, true);
    cells.injectFault(4, false);    // re-stick; value updated
    EXPECT_EQ(cells.faultCount(), 1u);
    EXPECT_FALSE(cells.readBit(4));
}

TEST(CellArray, DifferentialWriteProgramsOnlyDiffs)
{
    CellArray cells(8);
    BitVector target = BitVector::fromString("10110000");
    EXPECT_EQ(cells.writeDifferential(target), 3u);
    EXPECT_EQ(cells.read(), target);
    // Re-writing the same data programs nothing.
    EXPECT_EQ(cells.writeDifferential(target), 0u);
    EXPECT_EQ(cells.totalCellWrites(), 3u);
}

TEST(CellArray, DifferentialWriteSeesStuckValues)
{
    CellArray cells(4);
    cells.injectFault(0, true);    // stuck at 1, target wants 0
    BitVector target(4);           // all zeros
    // Cell 0 reads 1, differs from target 0 => programmed (in vain).
    EXPECT_EQ(cells.writeDifferential(target), 1u);
    EXPECT_TRUE(cells.readBit(0));
    // Programming again: still differs, still programmed.
    EXPECT_EQ(cells.writeDifferential(target), 1u);
}

TEST(CellArray, BlindWriteProgramsEverything)
{
    CellArray cells(16);
    Rng rng(3);
    const BitVector target = BitVector::random(16, rng);
    EXPECT_EQ(cells.writeBlind(target), 16u);
    EXPECT_EQ(cells.read(), target);
    EXPECT_EQ(cells.totalCellWrites(), 16u);
}

TEST(CellArray, ReadCombinesStoredAndStuck)
{
    CellArray cells(4);
    cells.programBit(0, true);
    cells.injectFault(1, true);
    cells.injectFault(2, false);
    cells.programBit(3, true);
    EXPECT_EQ(cells.read().toString(), "1101");
}

TEST(CellArray, SizeMismatchRejected)
{
    CellArray cells(8);
    EXPECT_THROW(cells.writeDifferential(BitVector(9)), ConfigError);
    EXPECT_THROW(cells.writeBlind(BitVector(7)), ConfigError);
}

TEST(CellArray, ZeroSizeRejected)
{
    EXPECT_THROW(CellArray cells(0), ConfigError);
}

} // namespace
} // namespace aegis::pcm
