/**
 * @file
 * The runtime invariant auditor (audit::SchemeAuditor).
 *
 * Two directions: (1) every scheme the factory can build runs clean
 * under the auditor — the decorator is transparent and its checks hold
 * on healthy implementations; (2) deliberately broken schemes and
 * deliberately corrupted metadata are caught, proving the tripwire
 * actually trips.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aegis/factory.h"
#include "audit/scheme_auditor.h"
#include "pcm/fail_cache.h"
#include "sim/experiment.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis {
namespace {

/** Every factory spelling exercised by the audit sweep, per size. */
std::vector<std::string>
allFactoryNames(std::size_t block_bits)
{
    std::vector<std::string> names =
        core::paperSchemeNames(block_bits);
    names.emplace_back("none");
    names.emplace_back("hamming");
    if (block_bits == 512) {
        names.emplace_back("aegis-cache-23x23");
        names.emplace_back("aegis-rw-23x23");
        names.emplace_back("aegis-rw-17x31");
        names.emplace_back("aegis-rw-p4-23x23");
        names.emplace_back("aegis-rw-p9-9x61");
        names.emplace_back("safer64-cache");
    } else {
        names.emplace_back("aegis-cache-12x23");
        names.emplace_back("aegis-rw-12x23");
        names.emplace_back("aegis-rw-p4-12x23");
        names.emplace_back("safer16-cache");
    }
    return names;
}

/** Drive @p steps random writes with occasional fault injections. */
void
driveRandomly(scheme::Scheme &scheme, pcm::CellArray &cells,
              pcm::OracleFaultDirectory &dir, std::uint64_t block_id,
              int steps, Rng &rng)
{
    for (int step = 0; step < steps; ++step) {
        if (step > 0 && rng.nextBounded(4) == 0) {
            const auto pos = static_cast<std::uint32_t>(
                rng.nextBounded(cells.size()));
            if (!cells.isStuck(pos)) {
                const bool stuck = cells.readBit(pos);
                cells.injectFaultAtCurrentValue(pos);
                dir.record(block_id, {pos, stuck});
            }
        }
        const BitVector data = BitVector::random(cells.size(), rng);
        if (!scheme.write(cells, data).ok)
            return;
        ASSERT_EQ(scheme.read(cells), data);
    }
}

TEST(SchemeAuditor, WrapsEverySchemeTheFactoryCanBuild)
{
    for (const std::size_t bits : {std::size_t{512}, std::size_t{256}}) {
        for (const std::string &name : allFactoryNames(bits)) {
            SCOPED_TRACE(name + "@" + std::to_string(bits));
            auto scheme = core::makeScheme(name + "+audit", bits);
            auto *auditor =
                dynamic_cast<audit::SchemeAuditor *>(scheme.get());
            ASSERT_NE(auditor, nullptr)
                << "factory did not wrap " << name;
            // Factory aliases (e.g. "hamming" -> "hamming72_64") may
            // canonicalize the base spelling; the suffix must survive.
            EXPECT_EQ(scheme->name(),
                      auditor->inner().name() + "+audit");
            EXPECT_EQ(scheme->blockBits(), bits);

            pcm::OracleFaultDirectory dir;
            scheme->attachDirectory(&dir, 1);
            pcm::CellArray cells(bits);
            Rng rng(std::hash<std::string>{}(name) ^ bits);
            driveRandomly(*scheme, cells, dir, 1, 40, rng);
            EXPECT_GT(auditor->auditedWrites(), 0u);
            EXPECT_GT(auditor->checksRun(), 0u);
        }
    }
}

TEST(SchemeAuditor, AuditedNameRoundTripsThroughFactory)
{
    const auto scheme = core::makeScheme("aegis-9x61+audit", 512);
    const auto again = core::makeScheme(scheme->name(), 512);
    EXPECT_EQ(again->name(), "aegis-9x61+audit");
}

TEST(SchemeAuditor, MakeAuditedSchemeNeverDoubleWraps)
{
    const auto scheme = core::makeAuditedScheme("aegis-9x61+audit", 512);
    const auto *auditor =
        dynamic_cast<const audit::SchemeAuditor *>(scheme.get());
    ASSERT_NE(auditor, nullptr);
    EXPECT_EQ(dynamic_cast<const audit::SchemeAuditor *>(
                  &auditor->inner()),
              nullptr);
}

TEST(SchemeAuditor, NeverAuditsAnAuditor)
{
    // Audit is a flag of the structured spec, not a stackable
    // decorator: repeated "+audit" spellings collapse and the built
    // scheme is wrapped exactly once.
    const auto scheme =
        core::makeScheme("aegis-9x61+audit+audit", 512);
    EXPECT_EQ(scheme->name(), "aegis-9x61+audit");
    const auto *auditor =
        dynamic_cast<const audit::SchemeAuditor *>(scheme.get());
    ASSERT_NE(auditor, nullptr);
    EXPECT_EQ(dynamic_cast<const audit::SchemeAuditor *>(
                  &auditor->inner()),
              nullptr);
}

TEST(SchemeAuditor, CloneKeepsAuditingAndCounters)
{
    auto scheme = core::makeAuditedScheme("safer32", 512);
    pcm::OracleFaultDirectory dir;
    scheme->attachDirectory(&dir, 3);
    pcm::CellArray cells(512);
    Rng rng(11);
    const BitVector data = BitVector::random(512, rng);
    ASSERT_TRUE(scheme->write(cells, data).ok);

    const auto copy = scheme->clone();
    const auto *auditor =
        dynamic_cast<const audit::SchemeAuditor *>(copy.get());
    ASSERT_NE(auditor, nullptr);
    EXPECT_EQ(auditor->auditedWrites(), 1u);
    EXPECT_EQ(copy->read(cells), data);
}

TEST(SchemeAuditor, CatchesACorruptedInversionFlag)
{
    // The acceptance scenario: one flipped inversion flag in the
    // persisted metadata must not go unnoticed.
    auto scheme = core::makeAuditedScheme("aegis-9x61", 512);
    auto *auditor = dynamic_cast<audit::SchemeAuditor *>(scheme.get());
    ASSERT_NE(auditor, nullptr);

    pcm::CellArray cells(512);
    Rng rng(23);
    const BitVector data = BitVector::random(512, rng);
    ASSERT_TRUE(scheme->write(cells, data).ok);
    ASSERT_EQ(scheme->read(cells), data);

    // Tamper behind the auditor's back: flip the last inversion flag
    // (group B-1) in the packed image and restore it into the scheme.
    BitVector image = auditor->inner().exportMetadata();
    image.flip(image.size() - 1);
    auditor->inner().importMetadata(image);

    EXPECT_THROW(scheme->read(cells), InternalError);

    // After disowning the shadow copy the decorator is permissive
    // again (reads decode whatever the metadata says).
    auditor->invalidateShadow();
    EXPECT_NO_THROW(scheme->read(cells));
}

TEST(SchemeAuditor, CatchesACorruptedSlopeCounter)
{
    auto scheme = core::makeAuditedScheme("aegis-12x23", 256);
    auto *auditor = dynamic_cast<audit::SchemeAuditor *>(scheme.get());
    ASSERT_NE(auditor, nullptr);

    pcm::CellArray cells(256);
    Rng rng(31);
    // Two faults force a nonzero inversion vector so a slope change
    // alters the decode.
    cells.injectFault(5, true);
    cells.injectFault(40, true);
    BitVector data(256, false);
    ASSERT_TRUE(scheme->write(cells, data).ok);

    BitVector image = auditor->inner().exportMetadata();
    image.flip(0);    // highest bit of the slope counter
    try {
        auditor->inner().importMetadata(image);
    } catch (const ConfigError &) {
        // The corrupt counter can exceed B, which import itself
        // rejects — also an acceptable detection.
        return;
    }
    EXPECT_THROW(scheme->read(cells), InternalError);
}

TEST(SchemeAuditor, CatchesFailCacheLies)
{
    auto scheme = core::makeAuditedScheme("aegis-12x23", 256);
    pcm::OracleFaultDirectory dir;
    scheme->attachDirectory(&dir, 7);
    pcm::CellArray cells(256);
    // The directory claims cell 100 is stuck, but it is healthy.
    dir.record(7, {100, true});
    Rng rng(5);
    EXPECT_THROW(scheme->write(cells, BitVector::random(256, rng)),
                 InternalError);
}

// ---------------------------------------------------------------------
// Deliberately defective schemes: each violates exactly one audited
// invariant; the auditor must name and catch it.
// ---------------------------------------------------------------------

enum class Defect
{
    None,
    ReadBackLies,         ///< claims ok but stores one bit wrong
    RetiresHealthyBlock,  ///< reports failure within its hard FTC
    ImageWidthLies,       ///< exportMetadata() narrower than promised
};

class DefectiveScheme : public scheme::Scheme
{
  public:
    DefectiveScheme(std::size_t n, Defect defect)
        : bits(n), flaw(defect)
    {}

    const std::string &name() const override
    {
        static const std::string n = "defective";
        return n;
    }
    std::size_t blockBits() const override { return bits; }
    std::size_t overheadBits() const override { return 4; }
    std::size_t hardFtc() const override { return 4; }
    std::size_t metadataBits() const override { return 4; }

    scheme::WriteOutcome write(pcm::CellArray &cells,
                               const BitVector &data) override
    {
        scheme::WriteOutcome outcome;
        if (flaw == Defect::RetiresHealthyBlock) {
            outcome.ok = false;
            return outcome;
        }
        BitVector target = data;
        if (flaw == Defect::ReadBackLies)
            target.flip(0);
        cells.writeDifferential(target);
        outcome.ok = true;
        outcome.programPasses = 1;
        return outcome;
    }

    BitVector read(const pcm::CellArray &cells) const override
    {
        return cells.read();
    }

    void reset() override {}

    std::unique_ptr<scheme::Scheme> clone() const override
    {
        return std::make_unique<DefectiveScheme>(*this);
    }

    BitVector exportMetadata() const override
    {
        return BitVector(flaw == Defect::ImageWidthLies ? 2 : 4);
    }

    void importMetadata(const BitVector &) override {}

    std::unique_ptr<scheme::LifetimeTracker>
    makeTracker(const scheme::TrackerOptions &) const override
    {
        return nullptr;
    }

  private:
    std::size_t bits;
    Defect flaw;
};

TEST(SchemeAuditor, HonestDefectFreeSchemePassesAudit)
{
    auto audited = audit::wrapWithAuditor(
        std::make_unique<DefectiveScheme>(64, Defect::None));
    pcm::CellArray cells(64);
    Rng rng(1);
    const BitVector data = BitVector::random(64, rng);
    EXPECT_TRUE(audited->write(cells, data).ok);
    EXPECT_EQ(audited->read(cells), data);
}

TEST(SchemeAuditor, CatchesReadAfterWriteMismatch)
{
    auto audited = audit::wrapWithAuditor(
        std::make_unique<DefectiveScheme>(64, Defect::ReadBackLies));
    pcm::CellArray cells(64);
    Rng rng(2);
    try {
        audited->write(cells, BitVector::random(64, rng));
        FAIL() << "auditor missed the read-back mismatch";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("read-after-write"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SchemeAuditor, CatchesPrematureRetirement)
{
    auto audited = audit::wrapWithAuditor(
        std::make_unique<DefectiveScheme>(
            64, Defect::RetiresHealthyBlock));
    pcm::CellArray cells(64);    // zero faults, hard FTC is 4
    Rng rng(3);
    try {
        audited->write(cells, BitVector::random(64, rng));
        FAIL() << "auditor missed the premature retirement";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("retired"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SchemeAuditor, CatchesMetadataImageWidthLie)
{
    auto audited = audit::wrapWithAuditor(
        std::make_unique<DefectiveScheme>(64, Defect::ImageWidthLies));
    pcm::CellArray cells(64);
    Rng rng(4);
    try {
        audited->write(cells, BitVector::random(64, rng));
        FAIL() << "auditor missed the image width lie";
    } catch (const InternalError &e) {
        EXPECT_NE(std::string(e.what()).find("metadataBits"),
                  std::string::npos)
            << e.what();
    }
}

TEST(SchemeAuditor, ExperimentConfigSpellsAuditedSchemes)
{
    sim::ExperimentConfig cfg;
    cfg.scheme = "aegis-9x61";
    EXPECT_EQ(cfg.schemeSpec(),
              (core::SchemeSpec{"aegis-9x61", false}));
    EXPECT_EQ(cfg.schemeSpec().str(), "aegis-9x61");
    cfg.audit = true;
    EXPECT_EQ(cfg.schemeSpec().str(), "aegis-9x61+audit");
    EXPECT_EQ(cfg.schemeSpec("ecp6"),
              (core::SchemeSpec{"ecp6", true}));
    EXPECT_EQ(cfg.schemeSpec("ecp6").str(), "ecp6+audit");
    EXPECT_EQ(cfg.schemeSpec("ecp6+audit").str(), "ecp6+audit");
}

} // namespace
} // namespace aegis
