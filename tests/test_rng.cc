/**
 * @file
 * Unit tests for util/rng: determinism, splitting, and the
 * distribution helpers the Monte Carlo relies on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aegis {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LE(same, 1);
}

TEST(Rng, SplitIsIndependentOfParentConsumption)
{
    Rng a(7);
    Rng b(7);
    (void)b.nextU64();    // consume from one parent only
    Rng child_a = a.split(5);
    Rng child_b = b.split(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(child_a.nextU64(), child_b.nextU64());
}

TEST(Rng, SplitStreamsDiffer)
{
    Rng parent(99);
    Rng c0 = parent.split(0);
    Rng c1 = parent.split(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += c0.nextU64() == c1.nextU64();
    EXPECT_LE(same, 1);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int kBuckets = 8, kDraws = 80000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBounded(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kDraws / kBuckets - 600);
        EXPECT_LT(c, kDraws / kBuckets + 600);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    constexpr int kDraws = 100000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < kDraws; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum2 += g * g;
    }
    const double mean = sum / kDraws;
    const double var = sum2 / kDraws - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(23);
    double sum = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i)
        sum += rng.nextGaussian(1e8, 2.5e7);
    EXPECT_NEAR(sum / kDraws / 1e8, 1.0, 0.01);
}

TEST(Rng, GeometricMeanIsInverseP)
{
    Rng rng(29);
    const double p = 0.02;
    double sum = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    EXPECT_NEAR(sum / kDraws * p, 1.0, 0.05);
}

TEST(Rng, GeometricEdgeCases)
{
    Rng rng(31);
    EXPECT_EQ(rng.nextGeometric(1.0), 1u);
    EXPECT_EQ(rng.nextGeometric(2.0), 1u);
    EXPECT_EQ(rng.nextGeometric(0.0),
              std::numeric_limits<std::uint64_t>::max());
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(rng.nextGeometric(0.5), 1u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(37);
    int hits = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BoolIsFair)
{
    Rng rng(41);
    int heads = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i)
        heads += rng.nextBool();
    EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

} // namespace
} // namespace aegis
