/**
 * @file
 * Unit tests for the ECP baseline.
 */

#include <gtest/gtest.h>

#include "scheme/ecp.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::scheme {
namespace {

TEST(Ecp, MetadataBasics)
{
    EcpScheme ecp(512, 6);
    EXPECT_EQ(ecp.name(), "ecp6");
    EXPECT_EQ(ecp.blockBits(), 512u);
    EXPECT_EQ(ecp.overheadBits(), 61u);
    EXPECT_EQ(ecp.hardFtc(), 6u);
    EXPECT_FALSE(ecp.requiresDirectory());
}

TEST(Ecp, CleanRoundTrip)
{
    EcpScheme ecp(128, 2);
    pcm::CellArray cells(128);
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        const BitVector data = BitVector::random(128, rng);
        EXPECT_TRUE(ecp.write(cells, data).ok);
        EXPECT_EQ(ecp.read(cells), data);
    }
    EXPECT_EQ(ecp.entriesUsed(), 0u);
}

TEST(Ecp, CorrectsUpToNFaults)
{
    constexpr std::size_t kEntries = 4;
    EcpScheme ecp(256, kEntries);
    pcm::CellArray cells(256);
    Rng rng(2);

    for (std::size_t f = 0; f < kEntries; ++f) {
        cells.injectFault(f * 37 + 5, rng.nextBool());
        for (int w = 0; w < 8; ++w) {
            const BitVector data = BitVector::random(256, rng);
            ASSERT_TRUE(ecp.write(cells, data).ok)
                << "fault " << f << " write " << w;
            ASSERT_EQ(ecp.read(cells), data);
        }
    }
    EXPECT_EQ(ecp.entriesUsed(), kEntries);
}

TEST(Ecp, FailsOnFaultNPlusOne)
{
    EcpScheme ecp(256, 2);
    pcm::CellArray cells(256);
    Rng rng(3);
    cells.injectFault(10, true);
    cells.injectFault(20, true);
    cells.injectFault(30, true);
    // Writing all-zeros makes every stuck-at-1 fault visible at once.
    const BitVector zeros(256);
    EXPECT_FALSE(ecp.write(cells, zeros).ok);
}

TEST(Ecp, SoftEqualsHardFtc)
{
    // Unlike the inversion schemes, ECP cannot exceed its pointer
    // budget no matter how favorable the data is.
    EcpScheme ecp(512, 3);
    pcm::CellArray cells(512);
    Rng rng(4);
    std::size_t tolerated = 0;
    for (std::size_t f = 0; f < 10; ++f) {
        cells.injectFault(f * 41 + 1, rng.nextBool());
        bool all_ok = true;
        for (int w = 0; w < 16 && all_ok; ++w)
            all_ok = ecp.write(cells, BitVector::random(512, rng)).ok;
        if (!all_ok)
            break;
        ++tolerated;
    }
    EXPECT_EQ(tolerated, 3u);
}

TEST(Ecp, ReplacementBitsTrackLatestData)
{
    EcpScheme ecp(64, 1);
    pcm::CellArray cells(64);
    cells.injectFault(7, true);

    BitVector a(64);
    EXPECT_TRUE(ecp.write(cells, a).ok);    // fault revealed: wants 0
    EXPECT_EQ(ecp.read(cells), a);

    BitVector b(64);
    b.set(7, true);
    EXPECT_TRUE(ecp.write(cells, b).ok);
    EXPECT_EQ(ecp.read(cells), b);
    EXPECT_EQ(ecp.entriesUsed(), 1u);
}

TEST(Ecp, HiddenFaultConsumesNoEntry)
{
    EcpScheme ecp(64, 1);
    pcm::CellArray cells(64);
    cells.injectFault(3, true);
    BitVector data(64);
    data.set(3, true);    // stuck value matches: fault invisible
    EXPECT_TRUE(ecp.write(cells, data).ok);
    EXPECT_EQ(ecp.entriesUsed(), 0u);
}

TEST(Ecp, ResetRestoresCapacity)
{
    EcpScheme ecp(64, 1);
    pcm::CellArray cells(64);
    cells.injectFault(3, true);
    EXPECT_TRUE(ecp.write(cells, BitVector(64)).ok);
    EXPECT_EQ(ecp.entriesUsed(), 1u);
    ecp.reset();
    EXPECT_EQ(ecp.entriesUsed(), 0u);
}

TEST(Ecp, TrackerMatchesPointerBudget)
{
    EcpScheme ecp(512, 4);
    auto tracker = ecp.makeTracker({});
    Rng rng(5);
    for (std::uint32_t f = 1; f <= 4; ++f) {
        EXPECT_EQ(tracker->onFault({f * 10, true}), FaultVerdict::Alive);
        EXPECT_EQ(tracker->writeFailureProbability(rng), 0.0);
    }
    EXPECT_EQ(tracker->onFault({50, false}), FaultVerdict::Dead);
    EXPECT_EQ(tracker->writeFailureProbability(rng), 1.0);
    EXPECT_TRUE(tracker->amplifiedCells().empty());
    EXPECT_EQ(tracker->faultCount(), 5u);
}

TEST(Ecp, CloneIsIndependent)
{
    EcpScheme ecp(64, 2);
    pcm::CellArray cells(64);
    cells.injectFault(1, true);
    EXPECT_TRUE(ecp.write(cells, BitVector(64)).ok);
    auto copy = ecp.clone();
    ecp.reset();
    EXPECT_EQ(ecp.entriesUsed(), 0u);
    EXPECT_EQ(static_cast<EcpScheme &>(*copy).entriesUsed(), 1u);
}

} // namespace
} // namespace aegis::scheme
