/**
 * @file
 * Unit tests for util/table_printer and util/cli.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/error.h"
#include "util/table_printer.h"

namespace aegis {
namespace {

TEST(TablePrinter, RendersAlignedTable)
{
    TablePrinter t("Demo");
    t.setHeader({"scheme", "bits"});
    t.addRow({"aegis-9x61", "67"});
    t.addRow({"safer64", "91"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("aegis-9x61"), std::string::npos);
    EXPECT_NE(out.find("| scheme"), std::string::npos);
    // Every data row starts with the aligned pipe.
    EXPECT_NE(out.find("| safer64"), std::string::npos);
}

TEST(TablePrinter, NumericColumnsRightAligned)
{
    TablePrinter t;
    t.setHeader({"scheme", "bits", "gain", "paper"});
    t.addRow({"aegis-9x61", "67", "2.1x", "711"});
    t.addRow({"safer64", "7", "10.5x", "-"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Numeric columns pad on the left; the short value lines up with
    // the right edge of the column.
    EXPECT_NE(out.find("|    7 |"), std::string::npos) << out;
    EXPECT_NE(out.find("|  2.1x |"), std::string::npos) << out;
    // The neutral "-" cell rides along in the right-aligned column.
    EXPECT_NE(out.find("|     - |"), std::string::npos) << out;
    // The scheme column stays left-aligned (padding after the text).
    EXPECT_NE(out.find("| safer64    |"), std::string::npos) << out;
}

TEST(TablePrinter, TextColumnStaysLeftAligned)
{
    TablePrinter t;
    t.setHeader({"name"});
    t.addRow({"12"});
    t.addRow({"mixed3"});    // one non-numeric cell → left alignment
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("| 12     |"), std::string::npos)
        << os.str();
}

TEST(TablePrinter, CellAccessorsExposeVerbatimData)
{
    TablePrinter t("Title");
    t.setHeader({"a", "b"});
    t.addRow({"x", "1"});
    t.addRow({"y", "2"});
    EXPECT_EQ(t.tableTitle(), "Title");
    EXPECT_EQ(t.headerRow(), (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(t.rowData().size(), 2u);
    EXPECT_EQ(t.rowData()[1],
              (std::vector<std::string>{"y", "2"}));
}

TEST(TablePrinter, RowWidthEnforced)
{
    TablePrinter t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
}

TEST(TablePrinter, HeaderAfterRowsRejected)
{
    TablePrinter t;
    t.addRow({"x"});
    EXPECT_THROW(t.setHeader({"a"}), ConfigError);
}

TEST(TablePrinter, CsvQuoting)
{
    TablePrinter t;
    t.setHeader({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
    EXPECT_EQ(TablePrinter::intNum(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::intNum(-42), "-42");
    EXPECT_EQ(TablePrinter::intNum(7), "7");
}

TEST(Cli, ParsesAllForms)
{
    CliParser cli("prog", "test");
    cli.addUint("pages", 10, "page count");
    cli.addDouble("mean", 1.5, "mean");
    cli.addString("scheme", "none", "scheme");
    cli.addBool("verbose", false, "verbosity");

    const char *argv[] = {"prog", "--pages=32", "--mean", "2.5",
                          "--scheme=aegis-9x61", "--verbose"};
    ASSERT_TRUE(cli.parse(6, argv));
    EXPECT_EQ(cli.getUint("pages"), 32u);
    EXPECT_DOUBLE_EQ(cli.getDouble("mean"), 2.5);
    EXPECT_EQ(cli.getString("scheme"), "aegis-9x61");
    EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(Cli, ValuesReportKindsAndOverrides)
{
    CliParser cli("prog", "test");
    cli.addUint("pages", 10, "page count");
    cli.addDouble("mean", 1.5, "mean");
    cli.addString("scheme", "none", "scheme");
    cli.addBool("verbose", false, "verbosity");

    const char *argv[] = {"prog", "--pages=32", "--verbose"};
    ASSERT_TRUE(cli.parse(3, argv));

    const std::vector<CliParser::FlagValue> vals = cli.values();
    ASSERT_EQ(vals.size(), 4u);
    // Registration order is preserved.
    EXPECT_EQ(vals[0].name, "pages");
    EXPECT_EQ(vals[0].kind, CliParser::FlagKind::Uint);
    EXPECT_EQ(vals[0].value, "32");
    EXPECT_FALSE(vals[0].isDefault);
    EXPECT_EQ(vals[1].name, "mean");
    EXPECT_EQ(vals[1].kind, CliParser::FlagKind::Double);
    EXPECT_TRUE(vals[1].isDefault);
    EXPECT_EQ(vals[2].kind, CliParser::FlagKind::String);
    EXPECT_EQ(vals[2].value, "none");
    EXPECT_EQ(vals[3].kind, CliParser::FlagKind::Bool);
    EXPECT_EQ(vals[3].value, "true");
    EXPECT_FALSE(vals[3].isDefault);
}

TEST(Cli, DefaultsHold)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 7, "n");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.getUint("n"), 7u);
}

TEST(Cli, HelpShortCircuits)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 7, "n");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UnknownFlagRejected)
{
    CliParser cli("prog", "test");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(Cli, BadValuesRejected)
{
    // Malformed values are rejected at parse time, before any work
    // runs, not lazily when the getter is first called.
    CliParser cli("prog", "test");
    cli.addUint("n", 1, "n");
    cli.addBool("flag", false, "f");
    const char *argv[] = {"prog", "--n=abc"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
    const char *argv2[] = {"prog", "--flag=maybe"};
    EXPECT_THROW(cli.parse(2, argv2), ConfigError);
    const char *argv3[] = {"prog", "--n=-3"};
    EXPECT_THROW(cli.parse(2, argv3), ConfigError);
    const char *argv4[] = {"prog", "--n=1.5"};
    EXPECT_THROW(cli.parse(2, argv4), ConfigError);
}

TEST(Cli, TryParseReportsErrorsWithoutThrowing)
{
    CliParser cli("prog", "test");
    cli.addUint("jobs", 4, "worker threads");
    const char *bad[] = {"prog", "--jobs", "banana"};
    const Expected<CliParser::ParseResult> r = cli.tryParse(3, bad);
    ASSERT_FALSE(r.ok());
    // The message names the flag and the offending text.
    EXPECT_NE(r.error().find("jobs"), std::string::npos) << r.error();
    EXPECT_NE(r.error().find("banana"), std::string::npos) << r.error();

    const char *unknown[] = {"prog", "--bogus=1"};
    EXPECT_FALSE(cli.tryParse(2, unknown).ok());
    const char *missing[] = {"prog", "--jobs"};
    EXPECT_FALSE(cli.tryParse(2, missing).ok());

    const char *good[] = {"prog", "--jobs=8"};
    const Expected<CliParser::ParseResult> okr = cli.tryParse(2, good);
    ASSERT_TRUE(okr.ok());
    EXPECT_EQ(*okr, CliParser::ParseResult::Run);
    EXPECT_EQ(cli.getUint("jobs"), 8u);
}

TEST(Cli, IsSetTracksExplicitFlags)
{
    CliParser cli("prog", "test");
    cli.addUint("jobs", 4, "worker threads");
    cli.addUint("pages", 10, "pages");
    // Explicitly passing the default value still counts as "set".
    const char *argv[] = {"prog", "--jobs=4"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.isSet("jobs"));
    EXPECT_FALSE(cli.isSet("pages"));
}

TEST(Cli, MissingValueRejected)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 1, "n");
    const char *argv[] = {"prog", "--n"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

} // namespace
} // namespace aegis
