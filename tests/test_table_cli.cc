/**
 * @file
 * Unit tests for util/table_printer and util/cli.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/cli.h"
#include "util/error.h"
#include "util/table_printer.h"

namespace aegis {
namespace {

TEST(TablePrinter, RendersAlignedTable)
{
    TablePrinter t("Demo");
    t.setHeader({"scheme", "bits"});
    t.addRow({"aegis-9x61", "67"});
    t.addRow({"safer64", "91"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("aegis-9x61"), std::string::npos);
    EXPECT_NE(out.find("| scheme"), std::string::npos);
    // Every data row starts with the aligned pipe.
    EXPECT_NE(out.find("| safer64"), std::string::npos);
}

TEST(TablePrinter, RowWidthEnforced)
{
    TablePrinter t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
}

TEST(TablePrinter, HeaderAfterRowsRejected)
{
    TablePrinter t;
    t.addRow({"x"});
    EXPECT_THROW(t.setHeader({"a"}), ConfigError);
}

TEST(TablePrinter, CsvQuoting)
{
    TablePrinter t;
    t.setHeader({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
    EXPECT_EQ(TablePrinter::intNum(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::intNum(-42), "-42");
    EXPECT_EQ(TablePrinter::intNum(7), "7");
}

TEST(Cli, ParsesAllForms)
{
    CliParser cli("prog", "test");
    cli.addUint("pages", 10, "page count");
    cli.addDouble("mean", 1.5, "mean");
    cli.addString("scheme", "none", "scheme");
    cli.addBool("verbose", false, "verbosity");

    const char *argv[] = {"prog", "--pages=32", "--mean", "2.5",
                          "--scheme=aegis-9x61", "--verbose"};
    ASSERT_TRUE(cli.parse(6, argv));
    EXPECT_EQ(cli.getUint("pages"), 32u);
    EXPECT_DOUBLE_EQ(cli.getDouble("mean"), 2.5);
    EXPECT_EQ(cli.getString("scheme"), "aegis-9x61");
    EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(Cli, DefaultsHold)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 7, "n");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.getUint("n"), 7u);
}

TEST(Cli, HelpShortCircuits)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 7, "n");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UnknownFlagRejected)
{
    CliParser cli("prog", "test");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(Cli, BadValuesRejected)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 1, "n");
    cli.addBool("flag", false, "f");
    const char *argv[] = {"prog", "--n=abc"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_THROW(cli.getUint("n"), ConfigError);
    const char *argv2[] = {"prog", "--flag=maybe"};
    ASSERT_TRUE(cli.parse(2, argv2));
    EXPECT_THROW(cli.getBool("flag"), ConfigError);
}

TEST(Cli, MissingValueRejected)
{
    CliParser cli("prog", "test");
    cli.addUint("n", 1, "n");
    const char *argv[] = {"prog", "--n"};
    EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

} // namespace
} // namespace aegis
