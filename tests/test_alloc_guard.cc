/**
 * @file
 * Runtime teeth for the AEGIS_HOT allocation-freedom contract.
 *
 * This binary is built with -DAEGIS_ALLOC_GUARD and its own copy of
 * util/alloc_guard.cc, so the global operator new/delete count every
 * heap allocation. Each registered scheme is driven through warmed
 * write/read/recover cycles over a faulty block; once the reusable
 * workspaces are warm, the steady state must not touch the heap.
 *
 * RDIS is the one documented exception on the write side: its solver
 * rebuilds the mark levels per solve, so only its read path is held
 * to the allocation-free standard (the table below encodes this).
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "obs/trace_sink.h"
#include "pcm/cell_array.h"
#include "pcm/cell_array_batch.h"
#include "pcm/fail_cache.h"
#include "scheme/batch.h"
#include "util/alloc_guard.h"
#include "util/bit_vector.h"
#include "util/rng.h"

namespace aegis {
namespace {

struct SchemeCase
{
    const char *name;
    std::size_t blockBits;
    /** Steady-state writes are allocation-free. */
    bool writeAllocFree;
    /** Faults to inject before warm-up (kept below hard FTC so the
     *  warmed loop keeps succeeding deterministically). */
    int faults;
};

const SchemeCase kCases[] = {
    {"none", 512, true, 0},
    {"ecp6", 512, true, 2},
    {"hamming", 512, true, 1},
    {"safer32", 512, true, 2},
    {"safer32-cache", 512, true, 2},
    {"rdis3", 512, false, 2},
    {"aegis-23x23", 512, true, 2},
    {"aegis-cache-23x23", 512, true, 2},
    {"aegis-rw-17x31", 512, true, 2},
    {"aegis-rw-p5-17x31", 512, true, 2},
};

class AllocGuardTest : public ::testing::TestWithParam<SchemeCase>
{};

/**
 * Drive the scheme through enough traffic that every lazily sized
 * workspace reaches steady state: the full pattern set is replayed so
 * the probed pass repeats warm-up behaviour exactly (same W/R
 * classifications, same partition configuration, no new faults).
 */
void
warmUp(scheme::Scheme &s, pcm::CellArray &cells,
       const std::vector<BitVector> &patterns, BitVector &out)
{
    for (int round = 0; round < 3; ++round) {
        for (const BitVector &data : patterns) {
            (void)s.write(cells, data);
            s.readInto(cells, out);
        }
    }
}

TEST_P(AllocGuardTest, SteadyStateIsAllocationFree)
{
    ASSERT_TRUE(allocGuardActive())
        << "binary must be built with AEGIS_ALLOC_GUARD";
    const SchemeCase &c = GetParam();

    auto scheme = core::makeScheme(c.name, c.blockBits);
    pcm::OracleFaultDirectory dir;
    if (scheme->requiresDirectory())
        scheme->attachDirectory(&dir, 0);

    pcm::CellArray cells(c.blockBits);
    Rng rng(42);
    for (int f = 0; f < c.faults; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(
                rng.nextBounded(c.blockBits));
        } while (cells.isStuck(pos));
        cells.injectFault(pos, rng.nextBool());
    }

    std::vector<BitVector> patterns;
    for (int i = 0; i < 4; ++i)
        patterns.push_back(BitVector::random(c.blockBits, rng));
    BitVector out;

    warmUp(*scheme, cells, patterns, out);

    // Probe the steady state: replay the same patterns. Assertions
    // run after the loop so a gtest failure can't allocate inside the
    // probed region.
    std::uint64_t write_allocs = 0;
    std::uint64_t read_allocs = 0;
    for (const BitVector &data : patterns) {
        AllocationProbe write_probe;
        (void)scheme->write(cells, data);
        write_allocs += write_probe.allocations();

        AllocationProbe read_probe;
        scheme->readInto(cells, out);
        read_allocs += read_probe.allocations();
    }

    EXPECT_EQ(read_allocs, 0u)
        << c.name << ": warmed readInto touched the heap";
    if (c.writeAllocFree) {
        EXPECT_EQ(write_allocs, 0u)
            << c.name << ": warmed write touched the heap";
    }
}

/** The batched SoA data plane under the same contract: once the
 *  workspace, lane schemes and lane matrices are warm, steady-state
 *  writeBatch/readBatch must not touch the heap — for the
 *  word-parallel overrides and the default per-lane loop alike. */
TEST_P(AllocGuardTest, BatchSteadyStateIsAllocationFree)
{
    ASSERT_TRUE(allocGuardActive())
        << "binary must be built with AEGIS_ALLOC_GUARD";
    const SchemeCase &c = GetParam();
    constexpr std::size_t kLanes = 4;

    auto proto = core::makeScheme(c.name, c.blockBits);
    pcm::CellArrayBatch batch(c.blockBits, kLanes);
    scheme::BatchWorkspace ws;
    ws.bind(*proto, kLanes);
    pcm::OracleFaultDirectory dir;
    if (proto->requiresDirectory()) {
        for (std::size_t l = 0; l < kLanes; ++l)
            ws.laneScheme(l)->attachDirectory(&dir, l);
    }

    for (std::size_t l = 0; l < kLanes; ++l) {
        Rng rng(42);
        for (int f = 0; f < c.faults; ++f) {
            std::uint32_t pos;
            do {
                pos = static_cast<std::uint32_t>(
                    rng.nextBounded(c.blockBits));
            } while (batch.isStuck(l, pos));
            batch.injectFault(l, pos, rng.nextBool());
        }
    }

    Rng rng(43);
    std::vector<pcm::LaneMatrix> patterns;
    for (int i = 0; i < 4; ++i) {
        patterns.emplace_back(c.blockBits, kLanes);
        for (std::size_t l = 0; l < kLanes; ++l)
            patterns.back().loadLane(
                l, BitVector::random(c.blockBits, rng));
    }
    std::vector<scheme::WriteOutcome> outcomes(kLanes);
    pcm::LaneMatrix out;

    for (int round = 0; round < 3; ++round) {
        for (const pcm::LaneMatrix &data : patterns) {
            proto->writeBatch(batch, data, outcomes, ws);
            proto->readBatch(batch, out, ws);
        }
    }

    std::uint64_t write_allocs = 0;
    std::uint64_t read_allocs = 0;
    for (const pcm::LaneMatrix &data : patterns) {
        AllocationProbe write_probe;
        proto->writeBatch(batch, data, outcomes, ws);
        write_allocs += write_probe.allocations();

        AllocationProbe read_probe;
        proto->readBatch(batch, out, ws);
        read_allocs += read_probe.allocations();
    }

    EXPECT_EQ(read_allocs, 0u)
        << c.name << ": warmed readBatch touched the heap";
    if (c.writeAllocFree) {
        EXPECT_EQ(write_allocs, 0u)
            << c.name << ": warmed writeBatch touched the heap";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AllocGuardTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<SchemeCase> &info) {
        std::string n = info.param.name;
        for (char &ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

/** The recover path — a fault discovered mid-write forces a
 *  repartition — stays allocation-free once workspaces are warm. */
TEST(AllocGuard, RecoveryRepartitionIsAllocationFree)
{
    ASSERT_TRUE(allocGuardActive());
    auto scheme = core::makeScheme("aegis-23x23", 512);
    pcm::CellArray cells(512);
    Rng rng(7);

    std::vector<BitVector> patterns;
    for (int i = 0; i < 4; ++i)
        patterns.push_back(BitVector::random(512, rng));
    BitVector out;
    warmUp(*scheme, cells, patterns, out);

    // Two faults in the same column collide under slope 0; discovering
    // them forces the slope search (the recover path). 23x23 covers
    // 512 bits, so offsets 0 and 23 share a column.
    cells.injectFault(0, true);
    cells.injectFault(23, true);

    // Cold pass: first-ever fault discovery may grow the fault
    // scratch — that is the documented cold branch.
    for (const BitVector &data : patterns)
        (void)scheme->write(cells, data);

    // Forget the advanced slope so the probed writes must rediscover
    // the faults and redo the slope search with warm scratch.
    scheme->reset();

    std::uint64_t probe_allocs;
    {
        AllocationProbe probe;
        for (const BitVector &data : patterns)
            (void)scheme->write(cells, data);
        probe_allocs = probe.allocations();
    }
    EXPECT_EQ(probe_allocs, 0u)
        << "repartitioning write touched the heap";
}

/** Positive control: the guard must actually detect allocations —
 *  otherwise every zero above is vacuous. */
TEST(AllocGuard, DetectsInjectedAllocation)
{
    ASSERT_TRUE(allocGuardActive());
    AllocationProbe probe;
    std::vector<std::uint64_t> sink(257, 1);
    ASSERT_GT(sink.size(), 0u);    // keep the vector alive
    EXPECT_GT(probe.allocations(), 0u);
    EXPECT_GE(probe.bytes(), 257 * sizeof(std::uint64_t));
}

/** The trace sink's record path is an index-store into the buffer
 *  allocated at track-open time: once armed and bound, steady-state
 *  span/instant/counter emission must not touch the heap — including
 *  past capacity, where events are dropped and counted. */
TEST(AllocGuard, TraceSinkRecordingIsAllocationFree)
{
    ASSERT_TRUE(allocGuardActive());
    obs::armTraceSink(64);
    std::uint64_t ticks = 0;
    {
        obs::TraceTrackScope track(0, "guarded", &ticks);

        std::uint64_t record_allocs;
        {
            AllocationProbe probe;
            for (int i = 0; i < 200; ++i) {    // overflows capacity
                ticks = static_cast<std::uint64_t>(i);
                obs::traceSpan("span", 1, ticks, ticks + 2);
                obs::traceInstant("instant", 1, ticks);
                obs::traceCounter("counter", 2, ticks, i);
            }
            record_allocs = probe.allocations();
        }
        EXPECT_EQ(record_allocs, 0u)
            << "armed trace recording touched the heap";
    }
    EXPECT_GT(obs::traceSinkStats().dropped, 0u);
    obs::disarmTraceSink();
}

/** With the sink disarmed (the default for every bench run without
 *  --trace-out) the emit helpers are unbound no-ops. */
TEST(AllocGuard, DisarmedTraceEmitIsAllocationFree)
{
    ASSERT_TRUE(allocGuardActive());
    ASSERT_FALSE(obs::traceSinkArmed());
    std::uint64_t emit_allocs;
    {
        AllocationProbe probe;
        for (int i = 0; i < 100; ++i) {
            obs::traceSpan("span", 0, 0, 1);
            obs::traceCounter("counter", 0, 0, i);
        }
        emit_allocs = probe.allocations();
    }
    EXPECT_EQ(emit_allocs, 0u)
        << "disarmed trace emit touched the heap";
}

/** Deallocations are counted symmetrically. */
TEST(AllocGuard, CountsFrees)
{
    ASSERT_TRUE(allocGuardActive());
    const std::uint64_t frees_before = allocGuardDeallocations();
    {
        std::vector<int> sink(1024, 3);
        ASSERT_EQ(sink.back(), 3);
    }
    EXPECT_GT(allocGuardDeallocations(), frees_before);
}

} // namespace
} // namespace aegis
