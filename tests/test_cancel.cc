/**
 * @file
 * Cooperative cancellation: the CancelToken latch (first reason wins,
 * deadline self-arming), exit-code and label conventions, and the
 * drain behaviour of parallelFor/parallelReduce once a token fires.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "util/cancel.h"
#include "util/parallel.h"

namespace aegis {
namespace {

TEST(CancelToken, StartsClear)
{
    CancelToken t;
    EXPECT_FALSE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::None);
}

TEST(CancelToken, FirstReasonWins)
{
    CancelToken t;
    t.requestCancel(CancelReason::Deadline);
    t.requestCancel(CancelReason::Signal);
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::Deadline);
    t.reset();
    EXPECT_FALSE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::None);
}

TEST(CancelToken, DeadlineArmsTheLatch)
{
    CancelToken t;
    t.setDeadlineAfter(0.0);    // already expired
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::Deadline);
}

TEST(CancelToken, FutureDeadlineDoesNotFireEarly)
{
    CancelToken t;
    t.setDeadlineAfter(3600.0);
    EXPECT_FALSE(t.cancelled());
}

TEST(CancelConventions, ExitCodesFollowShellAndTimeout)
{
    EXPECT_EQ(cancelExitCode(CancelReason::Signal), 130);
    EXPECT_EQ(cancelExitCode(CancelReason::Deadline), 124);
    EXPECT_EQ(cancelExitCode(CancelReason::Injected), 3);
}

TEST(CancelConventions, OutcomeLabels)
{
    EXPECT_STREQ(cancelOutcomeLabel(CancelReason::None), "completed");
    EXPECT_STREQ(cancelOutcomeLabel(CancelReason::Signal),
                 "cancelled (signal)");
    EXPECT_STREQ(cancelOutcomeLabel(CancelReason::Deadline),
                 "deadline exceeded");
    EXPECT_STREQ(cancelOutcomeLabel(CancelReason::Injected),
                 "cancelled (injected)");
    EXPECT_STREQ(cancelReasonName(CancelReason::Signal), "signal");
}

TEST(CancelParallel, ParallelForStopsHandingOutChunks)
{
    // Cancel from inside the third chunk body: already-started chunks
    // finish, no further chunk starts, and the call returns normally.
    CancelToken t;
    std::atomic<int> executed{0};
    parallelFor(
        1000, 2,
        [&](std::size_t) {
            if (executed.fetch_add(1) + 1 == 3)
                t.requestCancel(CancelReason::Injected);
        },
        &t);
    EXPECT_TRUE(t.cancelled());
    // With 2 workers at most a handful of chunks can be in flight
    // when the latch fires; far fewer than the full range ran.
    EXPECT_LT(executed.load(), 100);
    EXPECT_GE(executed.load(), 3);
}

TEST(CancelParallel, PreCancelledForRunsNothing)
{
    CancelToken t;
    t.requestCancel(CancelReason::Injected);
    std::atomic<int> executed{0};
    parallelFor(64, 4, [&](std::size_t) { executed.fetch_add(1); }, &t);
    EXPECT_EQ(executed.load(), 0);
}

TEST(CancelParallel, ReduceThrowsAfterDraining)
{
    struct Acc
    {
        int n = 0;
        void merge(const Acc &o) { n += o.n; }
    };
    CancelToken t;
    std::atomic<int> executed{0};
    try {
        (void)parallelReduce<Acc>(
            256, 2,
            [&](Acc &acc, std::size_t) {
                acc.n += 1;
                if (executed.fetch_add(1) + 1 == 5)
                    t.requestCancel(CancelReason::Deadline);
            },
            /*grain=*/8, &t);
        FAIL() << "parallelReduce returned a partial result";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelReason::Deadline);
        EXPECT_NE(std::string(e.what()).find("deadline"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_LT(executed.load(), 256);
}

TEST(CancelParallel, NullTokenMeansUncancellable)
{
    std::atomic<int> executed{0};
    parallelFor(32, 4, [&](std::size_t) { executed.fetch_add(1); },
                nullptr);
    EXPECT_EQ(executed.load(), 32);
}

TEST(CancelParallel, DeadlineCancelsARunningSweep)
{
    CancelToken t;
    t.setDeadlineAfter(0.02);
    std::atomic<int> executed{0};
    parallelFor(
        100000, 2,
        [&](std::size_t) {
            executed.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        &t);
    EXPECT_TRUE(t.cancelled());
    EXPECT_EQ(t.reason(), CancelReason::Deadline);
    EXPECT_LT(executed.load(), 100000);
}

TEST(CancelProcess, ProcessTokenIsASingleton)
{
    EXPECT_EQ(&processCancelToken(), &processCancelToken());
    processCancelToken().reset();    // leave clean for other tests
}

} // namespace
} // namespace aegis
