/**
 * @file
 * Unit tests for util/stats and util/histogram.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"

namespace aegis {
namespace {

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stderrOfMean(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(5);
    RunningStat all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextGaussian(10, 3);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, SumIsExact)
{
    // Regression: sum() used to be reconstructed as mean * count,
    // which drifts once the mean stops being representable. The
    // tracked total must match straightforward accumulation bit for
    // bit, in add order.
    Rng rng(11);
    RunningStat s;
    double ref = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextGaussian(1e9, 7.0);
        s.add(x);
        ref += x;
    }
    EXPECT_EQ(s.sum(), ref);
    EXPECT_NE(s.sum(), s.mean() * static_cast<double>(s.count()));
}

TEST(RunningStat, MergePreservesExactSum)
{
    Rng rng(13);
    RunningStat left, right;
    double refLeft = 0.0, refRight = 0.0;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 1e6;
        left.add(x);
        refLeft += x;
    }
    for (int i = 0; i < 300; ++i) {
        const double x = rng.nextDouble() * 1e6;
        right.add(x);
        refRight += x;
    }
    left.merge(right);
    // merge() adds the other side's subtotal in one step, so the
    // reference must too.
    EXPECT_EQ(left.sum(), refLeft + refRight);
}

TEST(RunningStat, CiShrinksWithSamples)
{
    Rng rng(7);
    RunningStat small, large;
    for (int i = 0; i < 100; ++i)
        small.add(rng.nextGaussian());
    for (int i = 0; i < 10000; ++i)
        large.add(rng.nextGaussian());
    EXPECT_LT(large.ci95(), small.ci95());
}

TEST(QuantileSampler, MedianAndExtremes)
{
    QuantileSampler q;
    for (int i = 1; i <= 101; ++i)
        q.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(q.median(), 51.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
    EXPECT_NEAR(q.quantile(0.25), 26.0, 1e-9);
}

TEST(QuantileSampler, Interpolates)
{
    QuantileSampler q;
    q.add(0.0);
    q.add(10.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.1), 1.0);
}

TEST(QuantileSampler, ErrorsOnEmptyOrBadQ)
{
    QuantileSampler q;
    EXPECT_THROW(q.median(), ConfigError);
    q.add(1.0);
    EXPECT_THROW(q.quantile(1.5), ConfigError);
}

TEST(Histogram, CountsAndCdf)
{
    Histogram h;
    h.add(3);
    h.add(3);
    h.add(5);
    h.add(10, 2);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.countOf(3), 2u);
    EXPECT_EQ(h.countOf(4), 0u);
    EXPECT_EQ(h.minKey(), 3);
    EXPECT_EQ(h.maxKey(), 10);
    EXPECT_DOUBLE_EQ(h.cdf(2), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(3), 0.4);
    EXPECT_DOUBLE_EQ(h.cdf(5), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(10), 1.0);
    EXPECT_DOUBLE_EQ(h.survival(5), 0.4);
}

TEST(QuantileSampler, MergeOfSplitsMatchesSinglePass)
{
    Rng rng(17);
    QuantileSampler all, left, right;
    for (int i = 0; i < 400; ++i) {
        const double x = rng.nextDouble() * 50;
        all.add(x);
        (i % 3 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_DOUBLE_EQ(left.median(), all.median());
    EXPECT_DOUBLE_EQ(left.quantile(0.1), all.quantile(0.1));
    EXPECT_DOUBLE_EQ(left.quantile(0.9), all.quantile(0.9));
}

TEST(Histogram, MergeOfSplitsMatchesSinglePass)
{
    Rng rng(19);
    Histogram all, left, right;
    for (int i = 0; i < 300; ++i) {
        const auto key = static_cast<std::int64_t>(rng.nextBounded(20));
        all.add(key);
        (i % 2 ? left : right).add(key);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), all.total());
    EXPECT_EQ(left.items(), all.items());
    EXPECT_DOUBLE_EQ(left.cdf(7), all.cdf(7));
}

TEST(Histogram, MergeWithEmptyAndWeights)
{
    Histogram a, empty;
    a.add(2, 3);
    a.merge(empty);
    EXPECT_EQ(a.total(), 3u);
    empty.merge(a);
    EXPECT_EQ(empty.countOf(2), 3u);
    empty.merge(a);
    EXPECT_EQ(empty.countOf(2), 6u);
}

TEST(SurvivalCurve, MergeOfSplitsMatchesSinglePass)
{
    Rng rng(23);
    SurvivalCurve all, left, right;
    for (int i = 0; i < 200; ++i) {
        const double t = rng.nextDouble() * 1000;
        all.addDeath(t);
        (i % 2 ? left : right).addDeath(t);
    }
    left.merge(right);
    EXPECT_EQ(left.population(), all.population());
    EXPECT_DOUBLE_EQ(left.timeToFraction(0.5), all.timeToFraction(0.5));
    EXPECT_EQ(left.sample(10), all.sample(10));
}

TEST(SurvivalCurve, MergeAfterQueryStaysConsistent)
{
    // Querying sorts the samples; a later merge must re-dirty the
    // curve so new deaths are seen.
    SurvivalCurve a, b;
    a.addDeath(1.0);
    a.addDeath(3.0);
    EXPECT_DOUBLE_EQ(a.aliveFraction(2.0), 0.5);
    b.addDeath(2.0);
    a.merge(b);
    EXPECT_EQ(a.population(), 3u);
    EXPECT_DOUBLE_EQ(a.timeToFraction(0.5), 2.0);
}

TEST(Histogram, ItemsAreOrdered)
{
    Histogram h;
    h.add(5);
    h.add(-1);
    h.add(2);
    const auto items = h.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, -1);
    EXPECT_EQ(items[2].first, 5);
}

TEST(SurvivalCurve, AliveFractionAndHalfLife)
{
    SurvivalCurve c;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        c.addDeath(t);
    EXPECT_DOUBLE_EQ(c.aliveFraction(0.5), 1.0);
    EXPECT_DOUBLE_EQ(c.aliveFraction(1.0), 0.75);
    EXPECT_DOUBLE_EQ(c.aliveFraction(2.5), 0.5);
    EXPECT_DOUBLE_EQ(c.aliveFraction(4.0), 0.0);
    // Half lifetime: the paper's metric — first time half the pages
    // are gone.
    EXPECT_DOUBLE_EQ(c.timeToFraction(0.5), 2.0);
    EXPECT_DOUBLE_EQ(c.timeToFraction(0.0), 4.0);
}

TEST(SurvivalCurve, SampleIsMonotone)
{
    SurvivalCurve c;
    Rng rng(9);
    for (int i = 0; i < 500; ++i)
        c.addDeath(rng.nextDouble() * 100);
    const auto pts = c.sample(20);
    ASSERT_EQ(pts.size(), 21u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LE(pts[i].second, pts[i - 1].second);
        EXPECT_GE(pts[i].first, pts[i - 1].first);
    }
    EXPECT_DOUBLE_EQ(pts.back().second, 0.0);
}

} // namespace
} // namespace aegis
