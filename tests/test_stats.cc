/**
 * @file
 * Unit tests for util/stats and util/histogram.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/stats.h"

namespace aegis {
namespace {

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsSafe)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stderrOfMean(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(5);
    RunningStat all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextGaussian(10, 3);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, CiShrinksWithSamples)
{
    Rng rng(7);
    RunningStat small, large;
    for (int i = 0; i < 100; ++i)
        small.add(rng.nextGaussian());
    for (int i = 0; i < 10000; ++i)
        large.add(rng.nextGaussian());
    EXPECT_LT(large.ci95(), small.ci95());
}

TEST(QuantileSampler, MedianAndExtremes)
{
    QuantileSampler q;
    for (int i = 1; i <= 101; ++i)
        q.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(q.median(), 51.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(q.quantile(1.0), 101.0);
    EXPECT_NEAR(q.quantile(0.25), 26.0, 1e-9);
}

TEST(QuantileSampler, Interpolates)
{
    QuantileSampler q;
    q.add(0.0);
    q.add(10.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(q.quantile(0.1), 1.0);
}

TEST(QuantileSampler, ErrorsOnEmptyOrBadQ)
{
    QuantileSampler q;
    EXPECT_THROW(q.median(), ConfigError);
    q.add(1.0);
    EXPECT_THROW(q.quantile(1.5), ConfigError);
}

TEST(Histogram, CountsAndCdf)
{
    Histogram h;
    h.add(3);
    h.add(3);
    h.add(5);
    h.add(10, 2);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.countOf(3), 2u);
    EXPECT_EQ(h.countOf(4), 0u);
    EXPECT_EQ(h.minKey(), 3);
    EXPECT_EQ(h.maxKey(), 10);
    EXPECT_DOUBLE_EQ(h.cdf(2), 0.0);
    EXPECT_DOUBLE_EQ(h.cdf(3), 0.4);
    EXPECT_DOUBLE_EQ(h.cdf(5), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(10), 1.0);
    EXPECT_DOUBLE_EQ(h.survival(5), 0.4);
}

TEST(Histogram, ItemsAreOrdered)
{
    Histogram h;
    h.add(5);
    h.add(-1);
    h.add(2);
    const auto items = h.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, -1);
    EXPECT_EQ(items[2].first, 5);
}

TEST(SurvivalCurve, AliveFractionAndHalfLife)
{
    SurvivalCurve c;
    for (double t : {1.0, 2.0, 3.0, 4.0})
        c.addDeath(t);
    EXPECT_DOUBLE_EQ(c.aliveFraction(0.5), 1.0);
    EXPECT_DOUBLE_EQ(c.aliveFraction(1.0), 0.75);
    EXPECT_DOUBLE_EQ(c.aliveFraction(2.5), 0.5);
    EXPECT_DOUBLE_EQ(c.aliveFraction(4.0), 0.0);
    // Half lifetime: the paper's metric — first time half the pages
    // are gone.
    EXPECT_DOUBLE_EQ(c.timeToFraction(0.5), 2.0);
    EXPECT_DOUBLE_EQ(c.timeToFraction(0.0), 4.0);
}

TEST(SurvivalCurve, SampleIsMonotone)
{
    SurvivalCurve c;
    Rng rng(9);
    for (int i = 0; i < 500; ++i)
        c.addDeath(rng.nextDouble() * 100);
    const auto pts = c.sample(20);
    ASSERT_EQ(pts.size(), 21u);
    for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LE(pts[i].second, pts[i - 1].second);
        EXPECT_GE(pts[i].first, pts[i - 1].first);
    }
    EXPECT_DOUBLE_EQ(pts.back().second, 0.0);
}

} // namespace
} // namespace aegis
