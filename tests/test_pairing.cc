/**
 * @file
 * Tests for the dynamic-pairing study.
 */

#include <gtest/gtest.h>

#include "sim/pairing.h"

namespace aegis::sim {
namespace {

ExperimentConfig
smallConfig(const std::string &scheme)
{
    ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.pages = 16;
    cfg.pageBytes = 1024;
    cfg.blockBits = 512;
    cfg.lifetimeMean = 1e6;
    return cfg;
}

TEST(Pairing, Deterministic)
{
    const PairingStudy a = runPairingStudy(smallConfig("ecp2"), 8);
    const PairingStudy b = runPairingStudy(smallConfig("ecp2"), 8);
    EXPECT_EQ(a.withPairing, b.withPairing);
    EXPECT_EQ(a.withoutPairing, b.withoutPairing);
}

TEST(Pairing, CapacityStartsFullAndDecays)
{
    const PairingStudy s = runPairingStudy(smallConfig("ecp2"), 12);
    ASSERT_FALSE(s.withPairing.empty());
    EXPECT_DOUBLE_EQ(s.withPairing.front().second, 16.0);
    EXPECT_DOUBLE_EQ(s.withoutPairing.front().second, 16.0);
    // Monotone non-increasing without pairing (pages only die).
    for (std::size_t i = 1; i < s.withoutPairing.size(); ++i) {
        EXPECT_LE(s.withoutPairing[i].second,
                  s.withoutPairing[i - 1].second);
    }
    // All pages dead at the horizon.
    EXPECT_DOUBLE_EQ(s.withoutPairing.back().second, 0.0);
}

TEST(Pairing, PairingNeverHurts)
{
    const PairingStudy s =
        runPairingStudy(smallConfig("aegis-23x23"), 16);
    for (std::size_t i = 0; i < s.withPairing.size(); ++i) {
        EXPECT_GE(s.withPairing[i].second,
                  s.withoutPairing[i].second);
    }
}

TEST(Pairing, PairingRecyclesSomeCapacity)
{
    // With a weak scheme, many pages fail with few dead blocks each:
    // plenty of compatible pairs must exist somewhere along the
    // trajectory.
    const PairingStudy s = runPairingStudy(smallConfig("ecp1"), 24);
    double best_gain = 0;
    for (std::size_t i = 0; i < s.withPairing.size(); ++i) {
        best_gain = std::max(best_gain, s.withPairing[i].second -
                                            s.withoutPairing[i].second);
    }
    EXPECT_GE(best_gain, 1.0);
}

TEST(Pairing, TimeToCapacityIsExtended)
{
    const PairingStudy s = runPairingStudy(smallConfig("ecp2"), 24);
    EXPECT_GE(s.timeToCapacity(0.5, true),
              s.timeToCapacity(0.5, false));
}

} // namespace
} // namespace aegis::sim
