/**
 * @file
 * Tests for the event-trace sink: ring-buffer recording with counted
 * drops, a golden-file check pinning the Chrome trace-event JSON
 * format, the trace_clock bound/unbound contract, AEGIS_TRACE_SCOPE's
 * dual feed into the sink, and byte-identical trace output across
 * repeated fixed-seed latency simulations.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "sim/timing/latency_sim.h"
#include "util/rng.h"

namespace aegis {
namespace {

/** Arm/disarm around each test so state never leaks between them. */
class TraceSinkTest : public ::testing::Test
{
  protected:
    void TearDown() override { obs::disarmTraceSink(); }
};

TEST_F(TraceSinkTest, DisarmedScopeRecordsNothing)
{
    ASSERT_FALSE(obs::traceSinkArmed());
    const std::uint64_t ticks = 7;
    {
        obs::TraceTrackScope track(0, "noop", &ticks);
        EXPECT_FALSE(obs::traceTrackBound());
        EXPECT_EQ(obs::trace_clock::now(), 0u);
        obs::traceSpan("x", 0, 1, 2);
    }
    const obs::TraceSinkStats stats = obs::traceSinkStats();
    EXPECT_EQ(stats.tracks, 0u);
    EXPECT_EQ(stats.recorded, 0u);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(TraceSinkTest, TraceClockReadsBoundTickSource)
{
    obs::armTraceSink(8);
    std::uint64_t ticks = 123;
    {
        obs::TraceTrackScope track(0, "clocked", &ticks);
        ASSERT_TRUE(obs::traceTrackBound());
        EXPECT_EQ(obs::trace_clock::now(), 123u);
        ticks = 456;
        EXPECT_EQ(obs::trace_clock::now(), 456u);
    }
    EXPECT_FALSE(obs::traceTrackBound());
    EXPECT_EQ(obs::trace_clock::now(), 0u);
}

TEST_F(TraceSinkTest, GoldenJson)
{
    obs::armTraceSink(8);
    const std::uint64_t ticks = 0;
    {
        obs::TraceTrackScope track(4, "demo", &ticks);
        obs::nameTraceLane(0, "metadata-bus");
        obs::traceSpan("write.pv", 1, 10, 25);
        obs::traceInstant("drain.enter", 1, 30);
        obs::traceCounter("queue.write", 2, 40, 3);
    }
    const std::string golden = R"json({
  "displayTimeUnit": "ms",
  "otherData": {
    "generator": "aegis trace sink",
    "clock": "sim ticks (1 tick rendered as 1us)",
    "recordedEvents": 3,
    "droppedEvents": 0
  },
  "traceEvents": [
    {
      "name": "process_name",
      "ph": "M",
      "pid": 5,
      "args": {
        "name": "demo"
      }
    },
    {
      "name": "thread_name",
      "ph": "M",
      "pid": 5,
      "tid": 0,
      "args": {
        "name": "metadata-bus"
      }
    },
    {
      "name": "write.pv",
      "ph": "X",
      "ts": 10,
      "dur": 15,
      "pid": 5,
      "tid": 1
    },
    {
      "name": "drain.enter",
      "ph": "i",
      "ts": 30,
      "pid": 5,
      "tid": 1,
      "s": "t"
    },
    {
      "name": "queue.write.b2",
      "ph": "C",
      "ts": 40,
      "pid": 5,
      "args": {
        "value": 3
      }
    }
  ]
}
)json";
    EXPECT_EQ(obs::traceToJson(), golden);
}

TEST_F(TraceSinkTest, OverflowDropsAreCountedNotResized)
{
    obs::armTraceSink(4);
    const std::uint64_t ticks = 0;
    {
        obs::TraceTrackScope track(0, "tiny", &ticks);
        for (std::uint64_t i = 0; i < 10; ++i)
            obs::traceSpan("s", 0, i, i + 1);
    }
    const obs::TraceSinkStats stats = obs::traceSinkStats();
    EXPECT_EQ(stats.tracks, 1u);
    EXPECT_EQ(stats.recorded, 4u);
    EXPECT_EQ(stats.dropped, 6u);
    // The flush surfaces the loss as a trailing counter sample.
    EXPECT_NE(obs::traceToJson().find("trace.dropped_events"),
              std::string::npos);
}

TEST_F(TraceSinkTest, ReopeningATrackAppends)
{
    obs::armTraceSink(8);
    const std::uint64_t ticks = 0;
    {
        obs::TraceTrackScope track(3, "first", &ticks);
        obs::traceSpan("a", 0, 0, 1);
    }
    {
        obs::TraceTrackScope track(3, "relabel-ignored", &ticks);
        obs::traceSpan("b", 0, 1, 2);
    }
    const obs::TraceSinkStats stats = obs::traceSinkStats();
    EXPECT_EQ(stats.tracks, 1u);
    EXPECT_EQ(stats.recorded, 2u);
    // The first open's label sticks.
    EXPECT_NE(obs::traceToJson().find("\"first\""), std::string::npos);
}

TEST_F(TraceSinkTest, TraceScopeFeedsSinkOnVirtualTime)
{
    obs::armTraceSink(8);
    std::uint64_t ticks = 100;
    {
        obs::TraceTrackScope track(0, "scoped", &ticks);
        {
            AEGIS_TRACE_SCOPE(obs::Scope::SchemeWrite);
            ticks = 150;
        }
    }
    EXPECT_EQ(obs::traceSinkStats().recorded, 1u);
    const std::string json = obs::traceToJson();
    EXPECT_NE(json.find("\"name\": \"scheme.write\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ts\": 100"), std::string::npos) << json;
    EXPECT_NE(json.find("\"dur\": 50"), std::string::npos) << json;
}

/** Fixed seed + same config must flush a byte-identical trace, and
 *  the controller events the report tooling keys on must appear. */
TEST_F(TraceSinkTest, LatencySimTraceIsByteStable)
{
    // The cache variant exercises every instrumented event: program-
    // and-verify spans, re-partition stalls, and fail-cache metadata
    // bus traffic.
    auto scheme = core::makeScheme("aegis-cache-23x23", 512);
    sim::timing::LatencySimConfig cfg;
    cfg.shape.pages = 16;
    cfg.writes = 800;
    cfg.faultsPerKwrite = 800.0;
    cfg.traceTrack = 0;
    cfg.traceLabel = "aegis-cache-23x23@800/kw";

    std::string first;
    for (int run = 0; run < 2; ++run) {
        obs::armTraceSink(1 << 16);
        (void)sim::timing::runLatencySim(*scheme, cfg, Rng(99));
        const std::string json = obs::traceToJson();
        obs::disarmTraceSink();
        if (run == 0) {
            first = json;
            EXPECT_NE(json.find("write.pv"), std::string::npos);
            EXPECT_NE(json.find("write.repartition"),
                      std::string::npos);
            EXPECT_NE(json.find("queue.write"), std::string::npos);
            EXPECT_NE(json.find("meta.lookup"), std::string::npos);
        } else {
            EXPECT_EQ(json, first);
        }
    }
    EXPECT_EQ(obs::traceSinkStats().dropped, 0u);
}

} // namespace
} // namespace aegis
