/**
 * @file
 * Differential fuzzing of BitVector against a trivially correct
 * reference model (std::vector<bool>). Random operation sequences on
 * random sizes must agree bit-for-bit on every query.
 */

#include <vector>

#include <gtest/gtest.h>

#include "util/bit_vector.h"
#include "util/rng.h"

namespace aegis {
namespace {

/** The reference: the same API on std::vector<bool>. */
struct Reference
{
    std::vector<bool> bits;

    explicit Reference(std::size_t n)
        : bits(n, false)
    {}

    void set(std::size_t i, bool v) { bits[i] = v; }
    void flip(std::size_t i) { bits[i] = !bits[i]; }

    void
    invert()
    {
        for (std::size_t i = 0; i < bits.size(); ++i)
            bits[i] = !bits[i];
    }

    void
    fill(bool v)
    {
        bits.assign(bits.size(), v);
    }

    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (bool b : bits)
            n += b;
        return n;
    }

    void
    xorWith(const Reference &other)
    {
        for (std::size_t i = 0; i < bits.size(); ++i)
            bits[i] = bits[i] != other.bits[i];
    }

    void
    andWith(const Reference &other)
    {
        for (std::size_t i = 0; i < bits.size(); ++i)
            bits[i] = bits[i] && other.bits[i];
    }

    void
    orWith(const Reference &other)
    {
        for (std::size_t i = 0; i < bits.size(); ++i)
            bits[i] = bits[i] || other.bits[i];
    }
};

void
expectSame(const BitVector &v, const Reference &ref)
{
    ASSERT_EQ(v.size(), ref.bits.size());
    ASSERT_EQ(v.popcount(), ref.popcount());
    for (std::size_t i = 0; i < ref.bits.size(); ++i)
        ASSERT_EQ(v.get(i), ref.bits[i]) << "bit " << i;
    // setBits must enumerate exactly the set positions, ascending.
    std::size_t cursor = 0;
    for (std::size_t pos : v.setBits()) {
        while (cursor < pos)
            ASSERT_FALSE(ref.bits[cursor++]);
        ASSERT_TRUE(ref.bits[cursor++]);
    }
    while (cursor < ref.bits.size())
        ASSERT_FALSE(ref.bits[cursor++]);
}

class BitVectorFuzz : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BitVectorFuzz, AgreesWithReferenceModel)
{
    const std::size_t n = GetParam();
    Rng rng(n * 2654435761u + 17);

    BitVector v(n), w(n);
    Reference rv(n), rw(n);

    for (int step = 0; step < 600; ++step) {
        const auto op = rng.nextBounded(9);
        const auto i = static_cast<std::size_t>(rng.nextBounded(n));
        switch (op) {
          case 0:
            v.set(i, true);
            rv.set(i, true);
            break;
          case 1:
            v.set(i, false);
            rv.set(i, false);
            break;
          case 2:
            v.flip(i);
            rv.flip(i);
            break;
          case 3:
            v.invert();
            rv.invert();
            break;
          case 4:
            w.set(i, true);
            rw.set(i, true);
            break;
          case 5:
            v ^= w;
            rv.xorWith(rw);
            break;
          case 6:
            v &= w;
            rv.andWith(rw);
            break;
          case 7:
            v |= w;
            rv.orWith(rw);
            break;
          case 8:
            v.fill(rng.nextBool());
            rv.fill(v.get(0));
            break;
        }
        if (step % 37 == 0)
            expectSame(v, rv);
    }
    expectSame(v, rv);
    expectSame(w, rw);

    // Cross-checks of derived queries.
    EXPECT_EQ(v.hammingDistance(w), (v ^ w).popcount());
    EXPECT_EQ(v.toString(),
              BitVector::fromString(v.toString()).toString());
    EXPECT_EQ((~v).popcount(), n - v.popcount());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorFuzz,
                         ::testing::Values(1, 3, 31, 32, 33, 63, 64,
                                           65, 100, 255, 256, 511,
                                           512, 1000));

} // namespace
} // namespace aegis
