/**
 * @file
 * Extended property sweep for the partition scheme: the theorems must
 * hold for *every* legal A x B formation, not just the paper's —
 * random primes, extreme aspect ratios, tiny and large blocks.
 */

#include <gtest/gtest.h>

#include "aegis/cost.h"
#include "aegis/partition.h"
#include "util/primes.h"
#include "util/rng.h"

namespace aegis::core {
namespace {

/** Random legal (B, n) combinations. */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
randomFormations(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    const auto primes = primesInRange(3, 131);
    while (out.size() < count) {
        const auto b = static_cast<std::uint32_t>(
            primes[rng.nextBounded(primes.size())]);
        // n in ((A-1)B, AB] for a random A <= B.
        const std::uint32_t a =
            1 + static_cast<std::uint32_t>(rng.nextBounded(b));
        const std::uint32_t lo = (a - 1) * b + 1;
        const std::uint32_t span = a * b - lo + 1;
        const std::uint32_t n =
            lo + static_cast<std::uint32_t>(rng.nextBounded(span));
        out.emplace_back(b, n);
    }
    return out;
}

TEST(PartitionSweep, TheoremsHoldOnRandomFormations)
{
    for (const auto &[b, n] : randomFormations(40, 20130711)) {
        const Partition part = Partition::forHeight(b, n);
        // Theorem 1 via group membership totals.
        std::size_t covered = 0;
        for (std::uint32_t y = 0; y < part.groups(); ++y)
            covered += part.groupMembers(y, b / 2).size();
        ASSERT_EQ(covered, n) << part.formation();

        // Theorem 2 on sampled pairs: collide on exactly the slope
        // collisionSlope names, or never (same column).
        Rng rng(b * 131071u + n);
        for (int pair = 0; pair < 60; ++pair) {
            const auto i = static_cast<std::uint32_t>(
                rng.nextBounded(n));
            auto j = static_cast<std::uint32_t>(rng.nextBounded(n));
            if (i == j)
                continue;
            const std::uint32_t expect = part.collisionSlope(i, j);
            for (std::uint32_t k = 0; k < part.slopes(); ++k) {
                const bool same =
                    part.groupOf(i, k) == part.groupOf(j, k);
                ASSERT_EQ(same, k == expect)
                    << part.formation() << " bits " << i << "," << j
                    << " slope " << k;
            }
        }
    }
}

TEST(PartitionSweep, GroupMembersAgreeWithGroupOf)
{
    for (const auto &[b, n] : randomFormations(15, 42)) {
        const Partition part = Partition::forHeight(b, n);
        for (std::uint32_t k = 0; k < part.slopes();
             k += 1 + part.slopes() / 5) {
            for (std::uint32_t y = 0; y < part.groups(); ++y) {
                for (std::uint32_t pos : part.groupMembers(y, k))
                    ASSERT_EQ(part.groupOf(pos, k), y);
            }
        }
    }
}

TEST(PartitionSweep, HardFtcGuaranteeNeverUndershoots)
{
    // For random fault sets of exactly hardFtc faults, a separating
    // slope must always exist (the C(f,2)+1 <= B argument).
    Rng rng(7);
    for (const auto &[b, n] : randomFormations(20, 99)) {
        const Partition part = Partition::forHeight(b, n);
        const std::uint32_t f =
            std::min<std::uint32_t>(hardFtcBasic(b), n);
        for (int trial = 0; trial < 25; ++trial) {
            std::vector<std::uint32_t> faults;
            while (faults.size() < f) {
                const auto pos = static_cast<std::uint32_t>(
                    rng.nextBounded(n));
                bool dup = false;
                for (std::uint32_t existing : faults)
                    dup |= existing == pos;
                if (!dup)
                    faults.push_back(pos);
            }
            bool separable = false;
            for (std::uint32_t k = 0; k < part.slopes() && !separable;
                 ++k) {
                std::vector<bool> seen(part.groups(), false);
                bool clash = false;
                for (std::uint32_t pos : faults) {
                    const std::uint32_t g = part.groupOf(pos, k);
                    if (seen[g]) {
                        clash = true;
                        break;
                    }
                    seen[g] = true;
                }
                separable = !clash;
            }
            ASSERT_TRUE(separable)
                << part.formation() << " failed at its hard FTC " << f;
        }
    }
}

TEST(PartitionSweep, MinimalCostFormationsAreLegal)
{
    for (std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
        for (std::uint32_t f = 1; f <= 12; ++f) {
            const CostPoint basic = minimalCostBasic(n, f);
            const Partition part(basic.a, basic.b, n);
            EXPECT_GE(hardFtcBasic(part.b()), f);
            const CostPoint rw = minimalCostRw(n, f);
            EXPECT_GE(hardFtcRw(rw.b), f);
        }
    }
}

TEST(PartitionSweep, CollisionSlopeDistributionIsBalanced)
{
    // Theorem 2 spreads pair collisions across slopes; no slope may
    // hoard them (that would concentrate re-partition pressure).
    const Partition part = Partition::forHeight(61, 512);
    std::vector<std::size_t> per_slope(61, 0);
    std::size_t colliding = 0;
    for (std::uint32_t i = 0; i < 512; ++i) {
        for (std::uint32_t j = i + 1; j < 512; ++j) {
            const std::uint32_t k = part.collisionSlope(i, j);
            if (k < 61) {
                ++per_slope[k];
                ++colliding;
            }
        }
    }
    const double mean =
        static_cast<double>(colliding) / per_slope.size();
    for (std::size_t count : per_slope) {
        EXPECT_GT(static_cast<double>(count), 0.8 * mean);
        EXPECT_LT(static_cast<double>(count), 1.2 * mean);
    }
}

} // namespace
} // namespace aegis::core
