/**
 * @file
 * Tests for the trace generators and the functional replay loop.
 */

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "sim/trace.h"
#include "util/error.h"

namespace aegis::sim {
namespace {

TEST(Trace, UniformCoversAllPages)
{
    UniformTrace trace(8);
    Rng rng(1);
    std::vector<int> hits(8, 0);
    for (int i = 0; i < 4000; ++i)
        ++hits[trace.nextPage(rng)];
    for (int h : hits) {
        EXPECT_GT(h, 350);
        EXPECT_LT(h, 650);
    }
}

TEST(Trace, SequentialWrapsInOrder)
{
    SequentialTrace trace(4);
    Rng rng(2);
    for (std::uint32_t i = 0; i < 12; ++i)
        EXPECT_EQ(trace.nextPage(rng), i % 4);
}

TEST(Trace, HotColdSkewsTraffic)
{
    HotColdTrace trace(20, 0.1, 0.9);    // 2 hot pages, 90% traffic
    Rng rng(3);
    int hot = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        hot += trace.nextPage(rng) < 2;
    EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.9, 0.02);
}

TEST(Trace, FactoryParsesSpecs)
{
    EXPECT_EQ(makeTrace("uniform", 4)->name(), "uniform");
    EXPECT_EQ(makeTrace("sequential", 4)->name(), "sequential");
    EXPECT_EQ(makeTrace("hotcold:0.25:0.8", 8)->name(),
              "hotcold(2 hot pages)");
    EXPECT_THROW(makeTrace("bogus", 4), ConfigError);
    EXPECT_THROW(makeTrace("hotcold:2.0:0.5", 4), ConfigError);
    EXPECT_THROW(makeTrace("hotcold:nope", 4), ConfigError);
}

TEST(TraceReplay, CleanDeviceHasIdealWear)
{
    const pcm::Geometry geom{512, 1024, 4};
    auto proto = core::makeScheme("aegis-23x23", 512);
    PcmDevice device(geom, *proto);
    UniformTrace trace(4);
    Rng rng(4);
    const TraceReplayStats stats =
        replayTrace(device, trace, 200, 0.0, rng);
    EXPECT_EQ(stats.pageWrites, 200u);
    EXPECT_EQ(stats.failedWrites, 0u);
    EXPECT_EQ(stats.faultsInjected, 0u);
    // Random data over random data: half the cells flip per write
    // (after the first cold pass inflates it slightly).
    EXPECT_NEAR(stats.programsPerBit(), 0.5, 0.05);
}

TEST(TraceReplay, FaultsRaiseWearAndRepartitions)
{
    const pcm::Geometry geom{512, 1024, 4};
    auto proto = core::makeScheme("aegis-12x23", 256);
    // Wrong block size on purpose must throw at device construction.
    EXPECT_THROW(PcmDevice(geom, *proto), ConfigError);

    auto proto512 = core::makeScheme("aegis-23x23", 512);
    PcmDevice device(geom, *proto512);
    UniformTrace trace(4);
    Rng rng(5);
    // Heavy fault pressure: several faults per block by the end, so
    // inversion rework and re-partitions are unavoidable.
    const TraceReplayStats stats =
        replayTrace(device, trace, 400, 500.0, rng);
    EXPECT_GT(stats.faultsInjected, 150u);
    // Inversion rework costs extra programs beyond the 0.5 ideal.
    EXPECT_GT(stats.programsPerBit(), 0.51);
    EXPECT_GT(stats.repartitions, 0u);
}

TEST(TraceReplay, DirectorySchemesReplayToo)
{
    const pcm::Geometry geom{512, 1024, 2};
    auto proto = core::makeScheme("aegis-rw-23x23", 512);
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    PcmDevice device(geom, *proto, dir);
    SequentialTrace trace(2);
    Rng rng(6);
    const TraceReplayStats stats =
        replayTrace(device, trace, 150, 30.0, rng);
    EXPECT_EQ(stats.pageWrites, 150u);
    EXPECT_GT(dir->totalFaults(), 0u);
}

} // namespace
} // namespace aegis::sim
