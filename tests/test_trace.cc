/**
 * @file
 * Tests for the request/trace API: synthetic generator distributions,
 * the reset()/seed-split restartability contract, HybridSim-format
 * file parsing, and the functional replay loop.
 */

#include <fstream>

#include <gtest/gtest.h>

#include "aegis/factory.h"
#include "sim/trace.h"
#include "util/error.h"

namespace aegis::sim {
namespace {

TraceShape
shapeFor(std::uint32_t pages, std::uint32_t page_bytes = 4096)
{
    TraceShape shape;
    shape.pages = pages;
    shape.pageBytes = page_bytes;
    return shape;
}

pcm::Geometry
geomFor(const TraceShape &shape)
{
    return pcm::Geometry{shape.blockBits, shape.pageBytes, shape.pages};
}

std::vector<MemRequest>
draw(TraceSource &trace, std::size_t n)
{
    std::vector<MemRequest> out;
    MemRequest req;
    while (out.size() < n && trace.next(req))
        out.push_back(req);
    return out;
}

TEST(Trace, UniformCoversAllPages)
{
    const TraceShape shape = shapeFor(8);
    UniformTrace trace(shape, Rng(1));
    const pcm::Geometry geom = geomFor(shape);
    std::vector<int> hits(8, 0);
    MemRequest req;
    for (int i = 0; i < 4000; ++i) {
        ASSERT_TRUE(trace.next(req));
        ++hits[pageOfAddr(geom, req.addr)];
    }
    for (int h : hits) {
        EXPECT_GT(h, 350);
        EXPECT_LT(h, 650);
    }
}

TEST(Trace, SequentialWrapsInOrder)
{
    const TraceShape shape = shapeFor(4);
    SequentialTrace trace(shape, Rng(2));
    const pcm::Geometry geom = geomFor(shape);
    MemRequest req;
    for (std::uint32_t i = 0; i < 12; ++i) {
        ASSERT_TRUE(trace.next(req));
        EXPECT_EQ(pageOfAddr(geom, req.addr), i % 4);
        EXPECT_EQ(req.issueTick, i * shape.arrivalGap);
        EXPECT_EQ(req.op, MemOp::Write);
    }
}

TEST(Trace, HotColdSkewsTraffic)
{
    const TraceShape shape = shapeFor(20);
    HotColdTrace trace(shape, Rng(3), 0.1, 0.9); // 2 hot pages, 90%
    const pcm::Geometry geom = geomFor(shape);
    int hot = 0;
    constexpr int kDraws = 20000;
    MemRequest req;
    for (int i = 0; i < kDraws; ++i) {
        ASSERT_TRUE(trace.next(req));
        hot += pageOfAddr(geom, req.addr) < 2;
    }
    EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.9, 0.02);
}

TEST(Trace, ZipfianConcentratesOnLowRanks)
{
    const TraceShape shape = shapeFor(16);
    ZipfianTrace trace(shape, Rng(4), 0.99);
    const pcm::Geometry geom = geomFor(shape);
    std::vector<int> hits(16, 0);
    constexpr int kDraws = 20000;
    MemRequest req;
    for (int i = 0; i < kDraws; ++i) {
        ASSERT_TRUE(trace.next(req));
        ++hits[pageOfAddr(geom, req.addr)];
    }
    // theta=0.99 over 16 pages: rank 0 carries ~29% of the mass and
    // the top quarter of pages a clear majority; uniform would give
    // 6.25% and 25%.
    EXPECT_GT(hits[0], kDraws / 5);
    EXPECT_GT(hits[0], hits[8]);
    const int top4 = hits[0] + hits[1] + hits[2] + hits[3];
    EXPECT_GT(static_cast<double>(top4) / kDraws, 0.5);
    EXPECT_EQ(trace.name(), "zipfian(theta=0.99)");
}

TEST(Trace, ReadFractionMixesOps)
{
    TraceShape shape = shapeFor(4);
    shape.readFraction = 0.3;
    UniformTrace trace(shape, Rng(5));
    int reads = 0;
    constexpr int kDraws = 10000;
    MemRequest req;
    for (int i = 0; i < kDraws; ++i) {
        ASSERT_TRUE(trace.next(req));
        reads += req.op == MemOp::Read;
    }
    EXPECT_NEAR(static_cast<double>(reads) / kDraws, 0.3, 0.02);
}

TEST(Trace, ResetReplaysBitIdentically)
{
    const TraceShape shape = shapeFor(8);
    const char *specs[] = {"uniform", "sequential", "hotcold:0.25:0.8",
                           "zipfian:0.99"};
    for (const char *spec : specs) {
        auto trace = makeTrace(spec, shape, Rng(7).split(3));
        const std::vector<MemRequest> first = draw(*trace, 200);
        trace->reset();
        const std::vector<MemRequest> second = draw(*trace, 200);
        ASSERT_EQ(first.size(), second.size()) << spec;
        for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_EQ(first[i].addr, second[i].addr) << spec;
            EXPECT_EQ(first[i].op, second[i].op) << spec;
            EXPECT_EQ(first[i].issueTick, second[i].issueTick) << spec;
        }
    }
}

TEST(Trace, SameStreamSameRequestsAcrossInstances)
{
    // The constructor contract: state is captured at construction, so
    // two sources built from the same (shape, stream) pair replay the
    // same requests — the property the --jobs grid relies on.
    const TraceShape shape = shapeFor(8);
    UniformTrace a(shape, Rng(11).split(2));
    UniformTrace b(shape, Rng(11).split(2));
    const std::vector<MemRequest> ra = draw(a, 100);
    const std::vector<MemRequest> rb = draw(b, 100);
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].addr, rb[i].addr);

    UniformTrace c(shape, Rng(11).split(9));
    const std::vector<MemRequest> rc = draw(c, 100);
    bool differs = false;
    for (std::size_t i = 0; i < ra.size(); ++i)
        differs = differs || ra[i].addr != rc[i].addr;
    EXPECT_TRUE(differs); // distinct splits, distinct streams
}

TEST(Trace, FactoryParsesSpecs)
{
    const TraceShape shape = shapeFor(8);
    const Rng s(1);
    EXPECT_EQ(makeTrace("uniform", shape, s)->name(), "uniform");
    EXPECT_EQ(makeTrace("sequential", shape, s)->name(), "sequential");
    EXPECT_EQ(makeTrace("hotcold:0.25:0.8", shape, s)->name(),
              "hotcold(2 hot pages)");
    EXPECT_EQ(makeTrace("zipfian", shape, s)->name(),
              "zipfian(theta=0.99)");
    EXPECT_EQ(makeTrace("zipfian:0.5", shape, s)->name(),
              "zipfian(theta=0.5)");
    EXPECT_THROW(makeTrace("bogus", shape, s), ConfigError);
    EXPECT_THROW(makeTrace("hotcold:2.0:0.5", shape, s), ConfigError);
    EXPECT_THROW(makeTrace("hotcold:nope", shape, s), ConfigError);
    EXPECT_THROW(makeTrace("zipfian:x", shape, s), ConfigError);
    EXPECT_THROW(makeTrace("file:/no/such/trace", shape, s),
                 ConfigError);
}

class FileTraceTest : public ::testing::Test
{
  protected:
    std::string
    writeFile(const std::string &name, const std::string &body)
    {
        const std::string path = ::testing::TempDir() + name;
        std::ofstream out(path);
        out << body;
        return path;
    }
};

TEST_F(FileTraceTest, ParsesHybridSimFormat)
{
    const std::string path = writeFile("golden.trc",
                                       "# issue_tick op address\n"
                                       "0 W 0x1000\n"
                                       "10 R 4096   # decimal below\n"
                                       "10 W 8192\n"
                                       "\n"
                                       "25 r 0x2040\n");
    FileTrace trace(path);
    ASSERT_EQ(trace.size(), 4u);
    const std::vector<MemRequest> &all = trace.all();
    EXPECT_EQ(all[0].issueTick, 0u);
    EXPECT_EQ(all[0].op, MemOp::Write);
    EXPECT_EQ(all[0].addr, 0x1000u);
    EXPECT_EQ(all[1].issueTick, 10u);
    EXPECT_EQ(all[1].op, MemOp::Read);
    EXPECT_EQ(all[1].addr, 4096u);
    EXPECT_EQ(all[2].addr, 8192u);
    EXPECT_EQ(all[3].op, MemOp::Read);
    EXPECT_EQ(all[3].addr, 0x2040u);
    EXPECT_EQ(trace.name(), "file(golden.trc)");

    // Exhausts, then rewinds to the identical stream.
    const std::vector<MemRequest> first = draw(trace, 100);
    EXPECT_EQ(first.size(), 4u);
    MemRequest req;
    EXPECT_FALSE(trace.next(req));
    trace.reset();
    const std::vector<MemRequest> second = draw(trace, 100);
    ASSERT_EQ(second.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST_F(FileTraceTest, RejectsMalformedLines)
{
    EXPECT_THROW(FileTrace(writeFile("t1.trc", "0 X 64\n")),
                 ConfigError);
    EXPECT_THROW(FileTrace(writeFile("t2.trc", "zero W 64\n")),
                 ConfigError);
    EXPECT_THROW(FileTrace(writeFile("t3.trc", "0 W junk\n")),
                 ConfigError);
    EXPECT_THROW(FileTrace(writeFile("t4.trc", "5 W 64\n1 W 64\n")),
                 ConfigError);
    EXPECT_THROW(FileTrace(writeFile("t5.trc", "0 W 64 extra\n")),
                 ConfigError);
    EXPECT_THROW(FileTrace(writeFile("t6.trc", "0 W\n")), ConfigError);
}

TEST(Trace, AddressFoldingIsConsistent)
{
    const pcm::Geometry geom{512, 1024, 4}; // 16 blocks of 64 bytes
    // Any address, however large, folds to a valid block inside the
    // page pageOfAddr reports.
    for (const std::uint64_t addr :
         {0ull, 63ull, 64ull, 1024ull, 65536ull, 0xdeadbeefull}) {
        const std::uint64_t block = blockOfAddr(geom, addr);
        EXPECT_LT(block, geom.totalBlocks());
        EXPECT_EQ(geom.pageOfBlock(block), pageOfAddr(geom, addr));
    }
    EXPECT_EQ(blockOfAddr(geom, 0), 0u);
    EXPECT_EQ(blockOfAddr(geom, 64), 1u);
    EXPECT_EQ(blockOfAddr(geom, 64 * 64), 0u); // wraps at device size
}

TEST(TraceReplay, CleanDeviceHasIdealWear)
{
    const TraceShape shape = shapeFor(4, 1024);
    const pcm::Geometry geom = geomFor(shape);
    auto proto = core::makeScheme("aegis-23x23", 512);
    PcmDevice device(geom, *proto);
    UniformTrace trace(shape, Rng(4).split(0));
    Rng rng(4);
    const TraceReplayStats stats =
        replayTrace(device, trace, 200, 0.0, rng);
    EXPECT_EQ(stats.pageWrites, 200u);
    EXPECT_EQ(stats.failedWrites, 0u);
    EXPECT_EQ(stats.faultsInjected, 0u);
    // Random data over random data: half the cells flip per write
    // (after the first cold pass inflates it slightly).
    EXPECT_NEAR(stats.programsPerBit(), 0.5, 0.05);
}

TEST(TraceReplay, FaultsRaiseWearAndRepartitions)
{
    const TraceShape shape = shapeFor(4, 1024);
    const pcm::Geometry geom = geomFor(shape);
    auto proto = core::makeScheme("aegis-12x23", 256);
    // Wrong block size on purpose must throw at device construction.
    EXPECT_THROW(PcmDevice(geom, *proto), ConfigError);

    auto proto512 = core::makeScheme("aegis-23x23", 512);
    PcmDevice device(geom, *proto512);
    UniformTrace trace(shape, Rng(5).split(0));
    Rng rng(5);
    // Heavy fault pressure: several faults per block by the end, so
    // inversion rework and re-partitions are unavoidable.
    const TraceReplayStats stats =
        replayTrace(device, trace, 400, 500.0, rng);
    EXPECT_GT(stats.faultsInjected, 150u);
    // Inversion rework costs extra programs beyond the 0.5 ideal.
    EXPECT_GT(stats.programsPerBit(), 0.51);
    EXPECT_GT(stats.repartitions, 0u);
}

TEST(TraceReplay, DirectorySchemesReplayToo)
{
    const TraceShape shape = shapeFor(2, 1024);
    const pcm::Geometry geom = geomFor(shape);
    auto proto = core::makeScheme("aegis-rw-23x23", 512);
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    PcmDevice device(geom, *proto, dir);
    SequentialTrace trace(shape, Rng(6).split(0));
    Rng rng(6);
    const TraceReplayStats stats =
        replayTrace(device, trace, 150, 30.0, rng);
    EXPECT_EQ(stats.pageWrites, 150u);
    EXPECT_GT(dir->totalFaults(), 0u);
}

TEST(TraceReplay, ReadsAreDecodedAndTallied)
{
    TraceShape shape = shapeFor(2, 1024);
    shape.readFraction = 0.5;
    const pcm::Geometry geom = geomFor(shape);
    auto proto = core::makeScheme("aegis-23x23", 512);
    PcmDevice device(geom, *proto);
    UniformTrace trace(shape, Rng(8).split(0));
    Rng rng(8);
    const TraceReplayStats stats =
        replayTrace(device, trace, 50, 0.0, rng);
    EXPECT_EQ(stats.pageWrites, 50u);
    EXPECT_GT(stats.pageReads, 10u);
}

} // namespace
} // namespace aegis::sim
