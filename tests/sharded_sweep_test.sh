#!/bin/sh
# Sharded-sweep supervisor integration test.
#
# Runs a bench to completion for a golden manifest, then re-runs it as
# a 4-shard sweep under tools/aegis-sweep three ways:
#
#  1. clean — all shards succeed; the merged manifest must be
#     bit-identical to the golden run in every deterministic field,
#     and the standalone `aegis-sweep merge` of the shard checkpoints
#     must reproduce the supervisor's merged checkpoint byte for byte;
#  2. chaos — one shard is killed mid-sweep and another hangs (stall
#     detection must SIGKILL it); both recover via retries and the
#     merged manifest is still bit-identical to the golden run;
#  3. exhausted — a shard is killed with a zero retry budget; the
#     sweep degrades gracefully: supervisor exit 0, merged manifest
#     says "status": "partial" and its shards section names the
#     casualty.
#
# Usage: sharded_sweep_test.sh <bench-binary> <aegis-sweep> <tools-dir>

set -u

BENCH=${1:?usage: sharded_sweep_test.sh <bench> <aegis-sweep> <tools-dir>}
SWEEP=${2:?usage: sharded_sweep_test.sh <bench> <aegis-sweep> <tools-dir>}
TOOLS=${3:?usage: sharded_sweep_test.sh <bench> <aegis-sweep> <tools-dir>}
PYTHON=${PYTHON:-python3}
FLAGS="--blocks 96 --seed 7"

WORK=$(mktemp -d) || exit 1
trap 'rm -rf "$WORK"' EXIT INT TERM

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# 1. Golden: the uninterrupted single-process run.
"$BENCH" $FLAGS --quiet --json "$WORK/golden.json" >/dev/null ||
    fail "golden run exited $?"

# 2. Clean 4-shard sweep.
"$SWEEP" run --out-dir "$WORK/clean" --shards 4 --retries 2 \
    --backoff 0.1 --backoff-cap 0.5 \
    -- "$BENCH" $FLAGS >/dev/null 2>"$WORK/clean.log" ||
    fail "clean sharded sweep exited $? ($(cat "$WORK/clean.log"))"
"$PYTHON" "$TOOLS/validate_manifest.py" "$WORK/clean/merged.json" ||
    fail "clean merged manifest fails schema validation"
"$PYTHON" "$TOOLS/compare_manifests.py" \
    "$WORK/golden.json" "$WORK/clean/merged.json" ||
    fail "clean sharded sweep diverged from the single-process run"
grep -q '"status": "complete"' "$WORK/clean/merged.json" ||
    fail "clean sweep manifest is not marked complete"
OK_COUNT=$(grep -c '"status": "ok"' "$WORK/clean/merged.json")
[ "$OK_COUNT" -eq 4 ] ||
    fail "clean sweep shards section has $OK_COUNT ok entries, want 4"

# 2b. The standalone merge subcommand reproduces the supervisor's
# merged checkpoint byte for byte.
"$SWEEP" merge --out "$WORK/remerged.ckpt" \
    "$WORK/clean/shard_0.ckpt" "$WORK/clean/shard_1.ckpt" \
    "$WORK/clean/shard_2.ckpt" "$WORK/clean/shard_3.ckpt" \
    2>/dev/null ||
    fail "standalone merge exited $?"
cmp -s "$WORK/remerged.ckpt" "$WORK/clean/merged.ckpt" ||
    fail "standalone merge differs from the supervisor's merge"

# 3. Chaos sweep: shard 1 dies abruptly after 3 chunks, shard 2 hangs
# after 2 chunks (the stall detector must put it down); both faults
# hit the first attempt only, so the retries recover the sweep.
"$SWEEP" run --out-dir "$WORK/chaos" --shards 4 --retries 2 \
    --stall-timeout 2 --backoff 0.1 --backoff-cap 0.5 \
    --chaos "1=kill-after-chunks=3;2=hang-after-chunks=2" \
    -- "$BENCH" $FLAGS >/dev/null 2>"$WORK/chaos.log" ||
    fail "chaos sharded sweep exited $? ($(cat "$WORK/chaos.log"))"
"$PYTHON" "$TOOLS/compare_manifests.py" \
    "$WORK/golden.json" "$WORK/chaos/merged.json" ||
    fail "chaos sharded sweep diverged from the single-process run"
grep -q '"status": "complete"' "$WORK/chaos/merged.json" ||
    fail "recovered chaos sweep is not marked complete"
grep -q "stalled" "$WORK/chaos.log" ||
    fail "the stall detector never fired ($(cat "$WORK/chaos.log"))"
grep -q "retry" "$WORK/chaos.log" ||
    fail "no retry was attempted ($(cat "$WORK/chaos.log"))"

# 4. Retry exhaustion: shard 3 is killed and has no retry budget. The
# sweep must degrade gracefully — exit 0, "partial" manifest naming
# the failed shard — instead of aborting.
"$SWEEP" run --out-dir "$WORK/exhausted" --shards 4 --retries 0 \
    --backoff 0.1 \
    --chaos "3=kill-after-chunks=1" \
    -- "$BENCH" $FLAGS >/dev/null 2>"$WORK/exhausted.log" ||
    fail "degraded sweep exited $? ($(cat "$WORK/exhausted.log"))"
"$PYTHON" "$TOOLS/validate_manifest.py" \
    "$WORK/exhausted/merged.json" ||
    fail "degraded merged manifest fails schema validation"
grep -q '"status": "partial"' "$WORK/exhausted/merged.json" ||
    fail "degraded sweep manifest is not marked partial"
grep -q '"status": "failed"' "$WORK/exhausted/merged.json" ||
    fail "degraded sweep manifest does not record the failed shard"

# 5. Reserved flags in the bench command are a configuration error.
"$SWEEP" run --out-dir "$WORK/bad" \
    -- "$BENCH" $FLAGS --json "$WORK/own.json" \
    >/dev/null 2>&1
STATUS=$?
[ "$STATUS" -eq 2 ] ||
    fail "reserved --json in bench command exited $STATUS, want 2"

echo "PASS sharded sweep: fault-tolerant and bit-identical"
exit 0
