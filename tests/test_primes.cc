/**
 * @file
 * Unit tests for util/primes.
 */

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/primes.h"

namespace aegis {
namespace {

TEST(Primes, SmallValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(5));
    EXPECT_FALSE(isPrime(9));
    EXPECT_FALSE(isPrime(91));    // 7 * 13
    EXPECT_TRUE(isPrime(97));
}

TEST(Primes, PaperHeightsArePrime)
{
    // Every B used by the paper's Aegis formations.
    for (std::uint64_t b : {23u, 29u, 31u, 37u, 47u, 61u, 71u})
        EXPECT_TRUE(isPrime(b)) << b;
}

TEST(Primes, MatchesSieveUpTo2000)
{
    std::vector<bool> sieve(2001, true);
    sieve[0] = sieve[1] = false;
    for (std::size_t i = 2; i * i <= 2000; ++i) {
        if (sieve[i]) {
            for (std::size_t j = i * i; j <= 2000; j += i)
                sieve[j] = false;
        }
    }
    for (std::uint64_t n = 0; n <= 2000; ++n)
        EXPECT_EQ(isPrime(n), sieve[n]) << n;
}

TEST(Primes, NextPrime)
{
    EXPECT_EQ(nextPrime(2), 2u);
    EXPECT_EQ(nextPrime(24), 29u);
    EXPECT_EQ(nextPrime(26), 29u);
    EXPECT_EQ(nextPrime(62), 67u);
    EXPECT_THROW(nextPrime(1), ConfigError);
}

TEST(Primes, PrevPrime)
{
    EXPECT_EQ(prevPrime(1), 0u);
    EXPECT_EQ(prevPrime(2), 2u);
    EXPECT_EQ(prevPrime(28), 23u);
    EXPECT_EQ(prevPrime(60), 59u);
}

TEST(Primes, Range)
{
    const auto primes = primesInRange(20, 40);
    const std::vector<std::uint64_t> expected{23, 29, 31, 37};
    EXPECT_EQ(primes, expected);
}

TEST(Primes, ModInverseProperty)
{
    for (std::uint64_t p : {23u, 31u, 61u, 71u}) {
        for (std::uint64_t a = 1; a < p; ++a) {
            const std::uint64_t inv = modInverse(a, p);
            EXPECT_EQ(a * inv % p, 1u) << a << " mod " << p;
        }
    }
}

TEST(Primes, ModInverseRejectsBadInput)
{
    EXPECT_THROW(modInverse(3, 10), ConfigError);    // composite modulus
    EXPECT_THROW(modInverse(0, 7), ConfigError);
    EXPECT_THROW(modInverse(7, 7), ConfigError);
}

} // namespace
} // namespace aegis
