/**
 * @file
 * Unit and property tests for the RDIS reconstruction.
 */

#include <gtest/gtest.h>

#include "pcm/fail_cache.h"
#include "scheme/rdis.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::scheme {
namespace {

/** Check marks against the W/R contract at cell granularity. */
void
expectSeparates(const RdisSolver &solver, const RdisMarks &marks,
                const std::vector<std::uint32_t> &wrong,
                const std::vector<std::uint32_t> &right)
{
    for (std::uint32_t w : wrong)
        EXPECT_TRUE(solver.inverted(marks, w)) << "W fault " << w;
    for (std::uint32_t r : right)
        EXPECT_FALSE(solver.inverted(marks, r)) << "R fault " << r;
}

TEST(RdisSolver, NoFaultsMeansNoInversion)
{
    RdisSolver solver(16, 16, 3);
    RdisMarks marks;
    ASSERT_TRUE(solver.solve({}, {}, marks));
    EXPECT_TRUE(solver.inversionMask(marks, 256).none());
}

TEST(RdisSolver, SingleWrongFault)
{
    RdisSolver solver(16, 16, 3);
    RdisMarks marks;
    ASSERT_TRUE(solver.solve({37}, {}, marks));
    EXPECT_TRUE(solver.inverted(marks, 37));
    // Level-1 product of one fault is exactly its own cell.
    EXPECT_EQ(solver.inversionMask(marks, 256).popcount(), 1u);
}

TEST(RdisSolver, TrappedRightFaultEscapesViaLevel2)
{
    // W at (0,0) and (1,1), R at (0,1): the R fault sits on a marked
    // row AND column, the level-2 exclusion must rescue it.
    RdisSolver solver(4, 4, 3);
    RdisMarks marks;
    const std::vector<std::uint32_t> wrong{0, 5};    // (0,0), (1,1)
    const std::vector<std::uint32_t> right{1};       // (0,1)
    ASSERT_TRUE(solver.solve(wrong, right, marks));
    expectSeparates(solver, marks, wrong, right);
}

TEST(RdisSolver, ClassicUnsolvableRectangle)
{
    // W at (0,0),(1,1) and R at (0,1),(1,0): every level flips the
    // full 2x2 product, so depth 3 (two stored levels) must fail.
    RdisSolver solver(4, 4, 3);
    RdisMarks marks;
    EXPECT_FALSE(solver.solve({0, 5}, {1, 4}, marks));
}

TEST(RdisSolver, HardFtc3PropertyRandomized)
{
    // Any <= 3 faults under any W/R labeling must be recoverable —
    // the paper's stated guarantee for RDIS-3.
    RdisSolver solver(16, 32, 3);
    Rng rng(7);
    for (int trial = 0; trial < 3000; ++trial) {
        std::vector<std::uint32_t> wrong, right;
        std::vector<std::uint32_t> used;
        const std::size_t f = 1 + rng.nextBounded(3);
        for (std::size_t i = 0; i < f; ++i) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
                dup = false;
                for (std::uint32_t u : used)
                    dup |= u == pos;
            } while (dup);
            used.push_back(pos);
            (rng.nextBool() ? wrong : right).push_back(pos);
        }
        RdisMarks marks;
        ASSERT_TRUE(solver.solve(wrong, right, marks))
            << "trial " << trial;
        expectSeparates(solver, marks, wrong, right);
    }
}

TEST(RdisSolver, SolvedLabelingsAlwaysSeparate)
{
    // Soundness: whenever solve() claims success the produced marks
    // must actually separate, for any fault count.
    RdisSolver solver(16, 32, 3);
    Rng rng(9);
    int solved = 0;
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::uint32_t> wrong, right, used;
        const std::size_t f = 4 + rng.nextBounded(20);
        for (std::size_t i = 0; i < f; ++i) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(512));
                dup = false;
                for (std::uint32_t u : used)
                    dup |= u == pos;
            } while (dup);
            used.push_back(pos);
            (rng.nextBool() ? wrong : right).push_back(pos);
        }
        RdisMarks marks;
        if (solver.solve(wrong, right, marks)) {
            ++solved;
            expectSeparates(solver, marks, wrong, right);
        }
    }
    EXPECT_GT(solved, 0);
}

TEST(RdisSolver, DeeperRecursionSolvesMore)
{
    RdisSolver d3(4, 4, 3);
    RdisSolver d4(4, 4, 4);
    // The 2x2 alternating rectangle defeats depth 3...
    RdisMarks marks;
    EXPECT_FALSE(d3.solve({0, 5}, {1, 4}, marks));
    // ...and depth 4 as well (it re-captures both W faults forever),
    // but depth 4 must solve everything depth 3 solves.
    Rng rng(11);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::uint32_t> wrong, right, used;
        const std::size_t f = 1 + rng.nextBounded(6);
        for (std::size_t i = 0; i < f; ++i) {
            std::uint32_t pos;
            bool dup;
            do {
                pos = static_cast<std::uint32_t>(rng.nextBounded(16));
                dup = false;
                for (std::uint32_t u : used)
                    dup |= u == pos;
            } while (dup);
            used.push_back(pos);
            (rng.nextBool() ? wrong : right).push_back(pos);
        }
        RdisMarks m3, m4;
        if (d3.solve(wrong, right, m3))
            EXPECT_TRUE(d4.solve(wrong, right, m4)) << "trial " << trial;
    }
}

TEST(Rdis, MetadataBasics)
{
    RdisScheme rdis(512);
    EXPECT_EQ(rdis.name(), "rdis3");
    EXPECT_EQ(rdis.overheadBits(), 97u);
    EXPECT_EQ(rdis.hardFtc(), 3u);
    EXPECT_TRUE(rdis.requiresDirectory());
    EXPECT_EQ(rdis.getSolver().rows(), 16u);
    EXPECT_EQ(rdis.getSolver().cols(), 32u);
}

TEST(Rdis, RoundTripWithFaults)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    RdisScheme rdis(256);
    rdis.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(256);
    Rng rng(13);

    for (int f = 0; f < 3; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(256));
        } while (cells.isStuck(pos));
        cells.injectFault(pos, rng.nextBool());
        for (int w = 0; w < 8; ++w) {
            const BitVector data = BitVector::random(256, rng);
            ASSERT_TRUE(rdis.write(cells, data).ok);
            ASSERT_EQ(rdis.read(cells), data);
        }
    }
}

TEST(Rdis, UnknownFaultsGetRecordedThenHandled)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    RdisScheme rdis(256);
    rdis.attachDirectory(dir.get(), 42);
    pcm::CellArray cells(256);

    cells.injectFault(100, true);
    const BitVector zeros(256);
    const WriteOutcome outcome = rdis.write(cells, zeros);
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.newFaults, 1u);
    EXPECT_EQ(dir->lookup(42).size(), 1u);
    EXPECT_EQ(rdis.read(cells), zeros);
}

TEST(Rdis, WriteWithoutDirectoryRejected)
{
    RdisScheme rdis(256);
    pcm::CellArray cells(256);
    EXPECT_THROW(rdis.write(cells, BitVector(256)), ConfigError);
}

TEST(Rdis, TrackerIsZeroRiskUnderHardFtc)
{
    RdisScheme rdis(512);
    auto tracker = rdis.makeTracker({256});
    Rng rng(17);
    for (std::uint32_t f = 0; f < 3; ++f) {
        EXPECT_EQ(tracker->onFault({f * 67 + 1, true}),
                  FaultVerdict::Alive);
        EXPECT_EQ(tracker->writeFailureProbability(rng), 0.0);
    }
}

TEST(Rdis, TrackerSeesRiskFromDenseFaults)
{
    // Cram faults into a 2-row/2-column rectangle pattern plus
    // friends; the failure probability must become positive.
    RdisScheme rdis(512);
    auto tracker = rdis.makeTracker({512});
    Rng rng(19);
    // (0,0), (0,1), (1,0), (1,1) in grid coordinates (cols = 32).
    tracker->onFault({0, true});
    tracker->onFault({1, true});
    tracker->onFault({32, true});
    tracker->onFault({33, true});
    const double p = tracker->writeFailureProbability(rng);
    // Exactly the alternating labelings (2 of 16) are unsolvable:
    // true p = 1/8.
    EXPECT_NEAR(p, 0.125, 0.05);
}

} // namespace
} // namespace aegis::scheme
