/**
 * @file
 * Tests for the aegis-cache variant: same capacity as basic Aegis,
 * single-pass writes and no wear amplification.
 */

#include <gtest/gtest.h>

#include "aegis/aegis_scheme.h"
#include "aegis/factory.h"
#include "pcm/fail_cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace aegis::core {
namespace {

TEST(AegisCache, FactoryAndMetadata)
{
    auto scheme = makeScheme("aegis-cache-17x31", 512);
    EXPECT_EQ(scheme->name(), "aegis-cache-17x31");
    EXPECT_TRUE(scheme->requiresDirectory());
    // Identical block-side metadata cost as the cache-less scheme.
    auto plain = makeScheme("aegis-17x31", 512);
    EXPECT_EQ(scheme->overheadBits(), plain->overheadBits());
    EXPECT_EQ(scheme->hardFtc(), plain->hardFtc());
}

TEST(AegisCache, KnownFaultsWriteInOnePass)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisScheme aegis = AegisScheme::forHeight(23, 512, true);
    aegis.attachDirectory(dir.get(), 0);
    pcm::CellArray cells(512);
    Rng rng(1);

    for (int f = 0; f < 5; ++f) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(512));
        } while (cells.isStuck(pos));
        const bool stuck = rng.nextBool();
        cells.injectFault(pos, stuck);
        dir->record(0, {pos, stuck});
    }
    for (int w = 0; w < 10; ++w) {
        const BitVector data = BitVector::random(512, rng);
        const auto outcome = aegis.write(cells, data);
        ASSERT_TRUE(outcome.ok);
        ASSERT_EQ(outcome.programPasses, 1u);
        ASSERT_EQ(aegis.read(cells), data);
    }
}

TEST(AegisCache, UnknownFaultsGetRecorded)
{
    auto dir = std::make_shared<pcm::OracleFaultDirectory>();
    AegisScheme aegis = AegisScheme::forHeight(23, 256, true);
    aegis.attachDirectory(dir.get(), 3);
    pcm::CellArray cells(256);

    cells.injectFault(50, true);
    EXPECT_TRUE(aegis.write(cells, BitVector(256)).ok);
    EXPECT_EQ(dir->lookup(3).size(), 1u);
}

TEST(AegisCache, WriteWithoutDirectoryRejected)
{
    AegisScheme aegis = AegisScheme::forHeight(23, 512, true);
    pcm::CellArray cells(512);
    EXPECT_THROW(aegis.write(cells, BitVector(512)), ConfigError);
}

TEST(AegisCache, TrackerHasNoAmplificationButSameCapacity)
{
    auto plain = makeScheme("aegis-23x23", 512);
    auto cached = makeScheme("aegis-cache-23x23", 512);
    auto t_plain = plain->makeTracker({});
    auto t_cached = cached->makeTracker({});
    EXPECT_TRUE(t_plain->dataIndependent());
    EXPECT_TRUE(t_cached->dataIndependent());

    Rng rng(2);
    for (std::uint32_t f = 0; f < 512; ++f) {
        const std::uint32_t pos = f * 97 % 512;
        const bool stuck = rng.nextBool();
        const auto v1 = t_plain->onFault({pos, stuck});
        const auto v2 = t_cached->onFault({pos, stuck});
        ASSERT_EQ(v1, v2) << "capacity must be identical";
        if (v1 == scheme::FaultVerdict::Dead)
            break;
        EXPECT_FALSE(t_plain->amplifiedCells().empty());
        EXPECT_TRUE(t_cached->amplifiedCells().empty());
    }
}

} // namespace
} // namespace aegis::core
