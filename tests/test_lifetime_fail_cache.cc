/**
 * @file
 * Unit tests for pcm/lifetime_model and pcm/fail_cache.
 */

#include <gtest/gtest.h>

#include "pcm/fail_cache.h"
#include "pcm/lifetime_model.h"
#include "util/error.h"
#include "util/stats.h"

namespace aegis::pcm {
namespace {

class LifetimeModels
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{};

TEST_P(LifetimeModels, MeanIsApproximatelyRespected)
{
    const auto &[kind, param] = GetParam();
    const double target = 1e6;
    auto model = makeLifetimeModel(kind, target, param);
    Rng rng(1234);
    RunningStat s;
    for (int i = 0; i < 40000; ++i)
        s.add(model->sample(rng));
    EXPECT_NEAR(s.mean() / target, 1.0, 0.02) << model->name();
    EXPECT_GE(s.min(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LifetimeModels,
    ::testing::Values(std::make_tuple("normal", 0.25),
                      std::make_tuple("lognormal", 0.25),
                      std::make_tuple("weibull", 2.0),
                      std::make_tuple("uniform", 0.5)));

TEST(LifetimeModel, PaperDefault)
{
    auto model = makePaperLifetimeModel();
    EXPECT_DOUBLE_EQ(model->mean(), 1e8);
    Rng rng(7);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(model->sample(rng));
    // 25% cv.
    EXPECT_NEAR(s.stddev() / s.mean(), 0.25, 0.01);
}

TEST(LifetimeModel, SamplesNeverBelowOne)
{
    // A tiny mean forces heavy truncation.
    NormalLifetimeModel model(2.0, 3.0);
    Rng rng(11);
    for (int i = 0; i < 5000; ++i)
        EXPECT_GE(model.sample(rng), 1.0);
}

TEST(LifetimeModel, FactoryRejectsUnknown)
{
    EXPECT_THROW(makeLifetimeModel("cauchy", 1e8, 0.25), ConfigError);
    EXPECT_THROW(NormalLifetimeModel(-1, 0.25), ConfigError);
    EXPECT_THROW(UniformLifetimeModel(1e8, 1.5), ConfigError);
}

TEST(OracleDirectory, RecordsAndDeduplicates)
{
    OracleFaultDirectory dir;
    dir.record(7, Fault{10, true});
    dir.record(7, Fault{3, false});
    dir.record(7, Fault{10, true});    // duplicate
    dir.record(8, Fault{1, true});

    const FaultSet block7 = dir.lookup(7);
    ASSERT_EQ(block7.size(), 2u);
    EXPECT_EQ(block7[0].pos, 3u);    // sorted
    EXPECT_EQ(block7[1].pos, 10u);
    EXPECT_EQ(dir.lookup(8).size(), 1u);
    EXPECT_TRUE(dir.lookup(99).empty());
    EXPECT_TRUE(dir.complete(7));
    EXPECT_EQ(dir.totalFaults(), 3u);
}

TEST(FailCache, HoldsWithinCapacity)
{
    DirectMappedFailCache cache(4096);
    for (std::uint32_t i = 0; i < 20; ++i)
        cache.record(i % 4, Fault{i * 13 % 512, (i & 1) != 0});
    // With 4096 sets and 20 entries collisions are unlikely but
    // possible; residency must be high.
    EXPECT_GE(cache.residency(), 0.9);
}

TEST(FailCache, ConflictEviction)
{
    // One set: every new fault evicts the previous one.
    DirectMappedFailCache cache(1);
    cache.record(1, Fault{5, true});
    cache.record(2, Fault{9, false});
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.lookup(1).empty());
    ASSERT_EQ(cache.lookup(2).size(), 1u);
    EXPECT_FALSE(cache.complete(1));
    EXPECT_TRUE(cache.complete(2));
    EXPECT_DOUBLE_EQ(cache.residency(), 0.5);
}

TEST(FailCache, RerecordingIsIdempotent)
{
    DirectMappedFailCache cache(64);
    cache.record(3, Fault{7, true});
    const auto ins = cache.insertions();
    cache.record(3, Fault{7, true});
    EXPECT_EQ(cache.insertions(), ins);    // same line, no new insert
    EXPECT_EQ(cache.lookup(3).size(), 1u);
}

TEST(FailCache, StuckValuePreserved)
{
    DirectMappedFailCache cache(128);
    cache.record(5, Fault{100, true});
    const FaultSet faults = cache.lookup(5);
    ASSERT_EQ(faults.size(), 1u);
    EXPECT_EQ(faults[0].pos, 100u);
    EXPECT_TRUE(faults[0].stuck);
}

TEST(FailCache, ZeroSetsRejected)
{
    EXPECT_THROW(DirectMappedFailCache cache(0), ConfigError);
}

} // namespace
} // namespace aegis::pcm
