
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_primes.cc" "tests/CMakeFiles/test_primes.dir/test_primes.cc.o" "gcc" "tests/CMakeFiles/test_primes.dir/test_primes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aegis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/aegis/CMakeFiles/aegis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheme/CMakeFiles/aegis_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/aegis_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aegis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
