# Empty compiler generated dependencies file for test_scheme_fuzz.
# This may be replaced when dependencies are built.
