file(REMOVE_RECURSE
  "CMakeFiles/test_scheme_fuzz.dir/test_scheme_fuzz.cc.o"
  "CMakeFiles/test_scheme_fuzz.dir/test_scheme_fuzz.cc.o.d"
  "test_scheme_fuzz"
  "test_scheme_fuzz.pdb"
  "test_scheme_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
