file(REMOVE_RECURSE
  "CMakeFiles/test_cell_array.dir/test_cell_array.cc.o"
  "CMakeFiles/test_cell_array.dir/test_cell_array.cc.o.d"
  "test_cell_array"
  "test_cell_array.pdb"
  "test_cell_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
