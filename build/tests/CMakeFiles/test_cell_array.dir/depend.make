# Empty dependencies file for test_cell_array.
# This may be replaced when dependencies are built.
