# Empty dependencies file for test_payg_remap.
# This may be replaced when dependencies are built.
