file(REMOVE_RECURSE
  "CMakeFiles/test_payg_remap.dir/test_payg_remap.cc.o"
  "CMakeFiles/test_payg_remap.dir/test_payg_remap.cc.o.d"
  "test_payg_remap"
  "test_payg_remap.pdb"
  "test_payg_remap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payg_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
