file(REMOVE_RECURSE
  "CMakeFiles/test_bit_vector_fuzz.dir/test_bit_vector_fuzz.cc.o"
  "CMakeFiles/test_bit_vector_fuzz.dir/test_bit_vector_fuzz.cc.o.d"
  "test_bit_vector_fuzz"
  "test_bit_vector_fuzz.pdb"
  "test_bit_vector_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_vector_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
