# Empty compiler generated dependencies file for test_bit_vector_fuzz.
# This may be replaced when dependencies are built.
