# Empty dependencies file for test_ecp.
# This may be replaced when dependencies are built.
