file(REMOVE_RECURSE
  "CMakeFiles/test_ecp.dir/test_ecp.cc.o"
  "CMakeFiles/test_ecp.dir/test_ecp.cc.o.d"
  "test_ecp"
  "test_ecp.pdb"
  "test_ecp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
