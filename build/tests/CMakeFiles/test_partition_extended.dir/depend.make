# Empty dependencies file for test_partition_extended.
# This may be replaced when dependencies are built.
