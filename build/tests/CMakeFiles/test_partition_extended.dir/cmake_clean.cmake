file(REMOVE_RECURSE
  "CMakeFiles/test_partition_extended.dir/test_partition_extended.cc.o"
  "CMakeFiles/test_partition_extended.dir/test_partition_extended.cc.o.d"
  "test_partition_extended"
  "test_partition_extended.pdb"
  "test_partition_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
