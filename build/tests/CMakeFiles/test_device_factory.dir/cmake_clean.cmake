file(REMOVE_RECURSE
  "CMakeFiles/test_device_factory.dir/test_device_factory.cc.o"
  "CMakeFiles/test_device_factory.dir/test_device_factory.cc.o.d"
  "test_device_factory"
  "test_device_factory.pdb"
  "test_device_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
