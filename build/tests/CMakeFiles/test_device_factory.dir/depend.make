# Empty dependencies file for test_device_factory.
# This may be replaced when dependencies are built.
