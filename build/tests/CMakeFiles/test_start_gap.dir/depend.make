# Empty dependencies file for test_start_gap.
# This may be replaced when dependencies are built.
