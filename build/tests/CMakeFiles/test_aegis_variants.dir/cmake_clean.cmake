file(REMOVE_RECURSE
  "CMakeFiles/test_aegis_variants.dir/test_aegis_variants.cc.o"
  "CMakeFiles/test_aegis_variants.dir/test_aegis_variants.cc.o.d"
  "test_aegis_variants"
  "test_aegis_variants.pdb"
  "test_aegis_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aegis_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
