# Empty dependencies file for test_aegis_variants.
# This may be replaced when dependencies are built.
