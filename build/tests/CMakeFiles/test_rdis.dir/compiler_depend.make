# Empty compiler generated dependencies file for test_rdis.
# This may be replaced when dependencies are built.
