file(REMOVE_RECURSE
  "CMakeFiles/test_rdis.dir/test_rdis.cc.o"
  "CMakeFiles/test_rdis.dir/test_rdis.cc.o.d"
  "test_rdis"
  "test_rdis.pdb"
  "test_rdis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
