file(REMOVE_RECURSE
  "CMakeFiles/test_aegis_scheme.dir/test_aegis_scheme.cc.o"
  "CMakeFiles/test_aegis_scheme.dir/test_aegis_scheme.cc.o.d"
  "test_aegis_scheme"
  "test_aegis_scheme.pdb"
  "test_aegis_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aegis_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
