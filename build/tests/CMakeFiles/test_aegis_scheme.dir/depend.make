# Empty dependencies file for test_aegis_scheme.
# This may be replaced when dependencies are built.
