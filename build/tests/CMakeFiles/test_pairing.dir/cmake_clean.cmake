file(REMOVE_RECURSE
  "CMakeFiles/test_pairing.dir/test_pairing.cc.o"
  "CMakeFiles/test_pairing.dir/test_pairing.cc.o.d"
  "test_pairing"
  "test_pairing.pdb"
  "test_pairing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
