# Empty dependencies file for test_trackers.
# This may be replaced when dependencies are built.
