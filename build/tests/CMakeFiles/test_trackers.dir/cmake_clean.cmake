file(REMOVE_RECURSE
  "CMakeFiles/test_trackers.dir/test_trackers.cc.o"
  "CMakeFiles/test_trackers.dir/test_trackers.cc.o.d"
  "test_trackers"
  "test_trackers.pdb"
  "test_trackers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trackers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
