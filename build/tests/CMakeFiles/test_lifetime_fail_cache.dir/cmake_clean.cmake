file(REMOVE_RECURSE
  "CMakeFiles/test_lifetime_fail_cache.dir/test_lifetime_fail_cache.cc.o"
  "CMakeFiles/test_lifetime_fail_cache.dir/test_lifetime_fail_cache.cc.o.d"
  "test_lifetime_fail_cache"
  "test_lifetime_fail_cache.pdb"
  "test_lifetime_fail_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifetime_fail_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
