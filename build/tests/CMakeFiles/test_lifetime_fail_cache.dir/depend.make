# Empty dependencies file for test_lifetime_fail_cache.
# This may be replaced when dependencies are built.
