file(REMOVE_RECURSE
  "CMakeFiles/test_brute_force_validation.dir/test_brute_force_validation.cc.o"
  "CMakeFiles/test_brute_force_validation.dir/test_brute_force_validation.cc.o.d"
  "test_brute_force_validation"
  "test_brute_force_validation.pdb"
  "test_brute_force_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brute_force_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
