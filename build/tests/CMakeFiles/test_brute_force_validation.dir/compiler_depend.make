# Empty compiler generated dependencies file for test_brute_force_validation.
# This may be replaced when dependencies are built.
