file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_codec.dir/test_metadata_codec.cc.o"
  "CMakeFiles/test_metadata_codec.dir/test_metadata_codec.cc.o.d"
  "test_metadata_codec"
  "test_metadata_codec.pdb"
  "test_metadata_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
