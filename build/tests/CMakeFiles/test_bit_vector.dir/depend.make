# Empty dependencies file for test_bit_vector.
# This may be replaced when dependencies are built.
