file(REMOVE_RECURSE
  "CMakeFiles/test_inversion_driver.dir/test_inversion_driver.cc.o"
  "CMakeFiles/test_inversion_driver.dir/test_inversion_driver.cc.o.d"
  "test_inversion_driver"
  "test_inversion_driver.pdb"
  "test_inversion_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inversion_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
