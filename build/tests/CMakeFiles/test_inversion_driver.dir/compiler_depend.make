# Empty compiler generated dependencies file for test_inversion_driver.
# This may be replaced when dependencies are built.
