file(REMOVE_RECURSE
  "CMakeFiles/test_safer.dir/test_safer.cc.o"
  "CMakeFiles/test_safer.dir/test_safer.cc.o.d"
  "test_safer"
  "test_safer.pdb"
  "test_safer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
