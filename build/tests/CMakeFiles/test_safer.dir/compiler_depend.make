# Empty compiler generated dependencies file for test_safer.
# This may be replaced when dependencies are built.
