file(REMOVE_RECURSE
  "CMakeFiles/test_aegis_cache.dir/test_aegis_cache.cc.o"
  "CMakeFiles/test_aegis_cache.dir/test_aegis_cache.cc.o.d"
  "test_aegis_cache"
  "test_aegis_cache.pdb"
  "test_aegis_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aegis_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
