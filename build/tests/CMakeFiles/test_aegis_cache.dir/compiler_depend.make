# Empty compiler generated dependencies file for test_aegis_cache.
# This may be replaced when dependencies are built.
