# Empty compiler generated dependencies file for device_lifetime.
# This may be replaced when dependencies are built.
