file(REMOVE_RECURSE
  "CMakeFiles/device_lifetime.dir/device_lifetime.cpp.o"
  "CMakeFiles/device_lifetime.dir/device_lifetime.cpp.o.d"
  "device_lifetime"
  "device_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
