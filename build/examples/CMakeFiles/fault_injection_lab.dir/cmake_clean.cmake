file(REMOVE_RECURSE
  "CMakeFiles/fault_injection_lab.dir/fault_injection_lab.cpp.o"
  "CMakeFiles/fault_injection_lab.dir/fault_injection_lab.cpp.o.d"
  "fault_injection_lab"
  "fault_injection_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_injection_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
