file(REMOVE_RECURSE
  "../bench/micro_partition_math"
  "../bench/micro_partition_math.pdb"
  "CMakeFiles/micro_partition_math.dir/micro_partition_math.cc.o"
  "CMakeFiles/micro_partition_math.dir/micro_partition_math.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partition_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
