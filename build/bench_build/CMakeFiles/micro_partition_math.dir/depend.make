# Empty dependencies file for micro_partition_math.
# This may be replaced when dependencies are built.
