file(REMOVE_RECURSE
  "../bench/fig10_rwp_pointer_sweep"
  "../bench/fig10_rwp_pointer_sweep.pdb"
  "CMakeFiles/fig10_rwp_pointer_sweep.dir/fig10_rwp_pointer_sweep.cc.o"
  "CMakeFiles/fig10_rwp_pointer_sweep.dir/fig10_rwp_pointer_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rwp_pointer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
