# Empty dependencies file for fig10_rwp_pointer_sweep.
# This may be replaced when dependencies are built.
