file(REMOVE_RECURSE
  "../bench/ablation_lifetime_models"
  "../bench/ablation_lifetime_models.pdb"
  "CMakeFiles/ablation_lifetime_models.dir/ablation_lifetime_models.cc.o"
  "CMakeFiles/ablation_lifetime_models.dir/ablation_lifetime_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lifetime_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
