# Empty dependencies file for ablation_lifetime_models.
# This may be replaced when dependencies are built.
