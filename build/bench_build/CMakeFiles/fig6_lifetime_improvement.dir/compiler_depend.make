# Empty compiler generated dependencies file for fig6_lifetime_improvement.
# This may be replaced when dependencies are built.
