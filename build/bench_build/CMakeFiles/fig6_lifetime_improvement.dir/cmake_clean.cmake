file(REMOVE_RECURSE
  "../bench/fig6_lifetime_improvement"
  "../bench/fig6_lifetime_improvement.pdb"
  "CMakeFiles/fig6_lifetime_improvement.dir/fig6_lifetime_improvement.cc.o"
  "CMakeFiles/fig6_lifetime_improvement.dir/fig6_lifetime_improvement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lifetime_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
