file(REMOVE_RECURSE
  "../bench/ext_dynamic_pairing"
  "../bench/ext_dynamic_pairing.pdb"
  "CMakeFiles/ext_dynamic_pairing.dir/ext_dynamic_pairing.cc.o"
  "CMakeFiles/ext_dynamic_pairing.dir/ext_dynamic_pairing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
