# Empty compiler generated dependencies file for ext_dynamic_pairing.
# This may be replaced when dependencies are built.
