# Empty compiler generated dependencies file for fig13_variants_perbit.
# This may be replaced when dependencies are built.
