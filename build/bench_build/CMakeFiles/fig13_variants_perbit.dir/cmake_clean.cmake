file(REMOVE_RECURSE
  "../bench/fig13_variants_perbit"
  "../bench/fig13_variants_perbit.pdb"
  "CMakeFiles/fig13_variants_perbit.dir/fig13_variants_perbit.cc.o"
  "CMakeFiles/fig13_variants_perbit.dir/fig13_variants_perbit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_variants_perbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
