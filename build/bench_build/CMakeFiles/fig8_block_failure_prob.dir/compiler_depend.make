# Empty compiler generated dependencies file for fig8_block_failure_prob.
# This may be replaced when dependencies are built.
