file(REMOVE_RECURSE
  "../bench/fig8_block_failure_prob"
  "../bench/fig8_block_failure_prob.pdb"
  "CMakeFiles/fig8_block_failure_prob.dir/fig8_block_failure_prob.cc.o"
  "CMakeFiles/fig8_block_failure_prob.dir/fig8_block_failure_prob.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_block_failure_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
