# Empty compiler generated dependencies file for fig12_variants_lifetime.
# This may be replaced when dependencies are built.
