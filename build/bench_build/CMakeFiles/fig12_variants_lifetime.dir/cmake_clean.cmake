file(REMOVE_RECURSE
  "../bench/fig12_variants_lifetime"
  "../bench/fig12_variants_lifetime.pdb"
  "CMakeFiles/fig12_variants_lifetime.dir/fig12_variants_lifetime.cc.o"
  "CMakeFiles/fig12_variants_lifetime.dir/fig12_variants_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_variants_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
