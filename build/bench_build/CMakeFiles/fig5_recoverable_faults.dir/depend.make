# Empty dependencies file for fig5_recoverable_faults.
# This may be replaced when dependencies are built.
