file(REMOVE_RECURSE
  "../bench/micro_scheme_throughput"
  "../bench/micro_scheme_throughput.pdb"
  "CMakeFiles/micro_scheme_throughput.dir/micro_scheme_throughput.cc.o"
  "CMakeFiles/micro_scheme_throughput.dir/micro_scheme_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_scheme_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
