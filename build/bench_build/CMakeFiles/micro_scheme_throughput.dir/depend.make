# Empty dependencies file for micro_scheme_throughput.
# This may be replaced when dependencies are built.
