# Empty dependencies file for fig11_variants_faults.
# This may be replaced when dependencies are built.
