file(REMOVE_RECURSE
  "../bench/fig11_variants_faults"
  "../bench/fig11_variants_faults.pdb"
  "CMakeFiles/fig11_variants_faults.dir/fig11_variants_faults.cc.o"
  "CMakeFiles/fig11_variants_faults.dir/fig11_variants_faults.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_variants_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
