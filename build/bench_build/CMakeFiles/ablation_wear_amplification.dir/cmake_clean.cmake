file(REMOVE_RECURSE
  "../bench/ablation_wear_amplification"
  "../bench/ablation_wear_amplification.pdb"
  "CMakeFiles/ablation_wear_amplification.dir/ablation_wear_amplification.cc.o"
  "CMakeFiles/ablation_wear_amplification.dir/ablation_wear_amplification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wear_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
