# Empty compiler generated dependencies file for ablation_wear_amplification.
# This may be replaced when dependencies are built.
