file(REMOVE_RECURSE
  "../bench/table1_cost"
  "../bench/table1_cost.pdb"
  "CMakeFiles/table1_cost.dir/table1_cost.cc.o"
  "CMakeFiles/table1_cost.dir/table1_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
