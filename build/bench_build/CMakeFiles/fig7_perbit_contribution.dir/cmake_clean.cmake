file(REMOVE_RECURSE
  "../bench/fig7_perbit_contribution"
  "../bench/fig7_perbit_contribution.pdb"
  "CMakeFiles/fig7_perbit_contribution.dir/fig7_perbit_contribution.cc.o"
  "CMakeFiles/fig7_perbit_contribution.dir/fig7_perbit_contribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perbit_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
