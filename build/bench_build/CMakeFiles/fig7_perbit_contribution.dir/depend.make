# Empty dependencies file for fig7_perbit_contribution.
# This may be replaced when dependencies are built.
