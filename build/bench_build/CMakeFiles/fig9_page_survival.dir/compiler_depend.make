# Empty compiler generated dependencies file for fig9_page_survival.
# This may be replaced when dependencies are built.
