file(REMOVE_RECURSE
  "../bench/fig9_page_survival"
  "../bench/fig9_page_survival.pdb"
  "CMakeFiles/fig9_page_survival.dir/fig9_page_survival.cc.o"
  "CMakeFiles/fig9_page_survival.dir/fig9_page_survival.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_page_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
