# Empty compiler generated dependencies file for ext_payg_freep.
# This may be replaced when dependencies are built.
