file(REMOVE_RECURSE
  "../bench/ext_payg_freep"
  "../bench/ext_payg_freep.pdb"
  "CMakeFiles/ext_payg_freep.dir/ext_payg_freep.cc.o"
  "CMakeFiles/ext_payg_freep.dir/ext_payg_freep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_payg_freep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
