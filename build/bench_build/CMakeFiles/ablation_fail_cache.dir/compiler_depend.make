# Empty compiler generated dependencies file for ablation_fail_cache.
# This may be replaced when dependencies are built.
