file(REMOVE_RECURSE
  "../bench/ablation_fail_cache"
  "../bench/ablation_fail_cache.pdb"
  "CMakeFiles/ablation_fail_cache.dir/ablation_fail_cache.cc.o"
  "CMakeFiles/ablation_fail_cache.dir/ablation_fail_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fail_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
