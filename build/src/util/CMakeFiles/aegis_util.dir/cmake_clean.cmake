file(REMOVE_RECURSE
  "CMakeFiles/aegis_util.dir/bit_io.cc.o"
  "CMakeFiles/aegis_util.dir/bit_io.cc.o.d"
  "CMakeFiles/aegis_util.dir/bit_vector.cc.o"
  "CMakeFiles/aegis_util.dir/bit_vector.cc.o.d"
  "CMakeFiles/aegis_util.dir/cli.cc.o"
  "CMakeFiles/aegis_util.dir/cli.cc.o.d"
  "CMakeFiles/aegis_util.dir/histogram.cc.o"
  "CMakeFiles/aegis_util.dir/histogram.cc.o.d"
  "CMakeFiles/aegis_util.dir/primes.cc.o"
  "CMakeFiles/aegis_util.dir/primes.cc.o.d"
  "CMakeFiles/aegis_util.dir/rng.cc.o"
  "CMakeFiles/aegis_util.dir/rng.cc.o.d"
  "CMakeFiles/aegis_util.dir/stats.cc.o"
  "CMakeFiles/aegis_util.dir/stats.cc.o.d"
  "CMakeFiles/aegis_util.dir/table_printer.cc.o"
  "CMakeFiles/aegis_util.dir/table_printer.cc.o.d"
  "libaegis_util.a"
  "libaegis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
