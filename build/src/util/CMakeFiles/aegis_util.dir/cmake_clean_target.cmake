file(REMOVE_RECURSE
  "libaegis_util.a"
)
