
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bit_io.cc" "src/util/CMakeFiles/aegis_util.dir/bit_io.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/bit_io.cc.o.d"
  "/root/repo/src/util/bit_vector.cc" "src/util/CMakeFiles/aegis_util.dir/bit_vector.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/bit_vector.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/util/CMakeFiles/aegis_util.dir/cli.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/cli.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/aegis_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/primes.cc" "src/util/CMakeFiles/aegis_util.dir/primes.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/primes.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/util/CMakeFiles/aegis_util.dir/rng.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/util/CMakeFiles/aegis_util.dir/stats.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/stats.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/util/CMakeFiles/aegis_util.dir/table_printer.cc.o" "gcc" "src/util/CMakeFiles/aegis_util.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
