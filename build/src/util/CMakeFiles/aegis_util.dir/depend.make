# Empty dependencies file for aegis_util.
# This may be replaced when dependencies are built.
