# Empty compiler generated dependencies file for aegis_scheme.
# This may be replaced when dependencies are built.
