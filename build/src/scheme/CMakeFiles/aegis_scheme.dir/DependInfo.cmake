
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheme/ecp.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/ecp.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/ecp.cc.o.d"
  "/root/repo/src/scheme/hamming.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/hamming.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/hamming.cc.o.d"
  "/root/repo/src/scheme/inversion_driver.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/inversion_driver.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/inversion_driver.cc.o.d"
  "/root/repo/src/scheme/none.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/none.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/none.cc.o.d"
  "/root/repo/src/scheme/rdis.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/rdis.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/rdis.cc.o.d"
  "/root/repo/src/scheme/safer.cc" "src/scheme/CMakeFiles/aegis_scheme.dir/safer.cc.o" "gcc" "src/scheme/CMakeFiles/aegis_scheme.dir/safer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcm/CMakeFiles/aegis_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aegis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
