file(REMOVE_RECURSE
  "libaegis_scheme.a"
)
