file(REMOVE_RECURSE
  "CMakeFiles/aegis_scheme.dir/ecp.cc.o"
  "CMakeFiles/aegis_scheme.dir/ecp.cc.o.d"
  "CMakeFiles/aegis_scheme.dir/hamming.cc.o"
  "CMakeFiles/aegis_scheme.dir/hamming.cc.o.d"
  "CMakeFiles/aegis_scheme.dir/inversion_driver.cc.o"
  "CMakeFiles/aegis_scheme.dir/inversion_driver.cc.o.d"
  "CMakeFiles/aegis_scheme.dir/none.cc.o"
  "CMakeFiles/aegis_scheme.dir/none.cc.o.d"
  "CMakeFiles/aegis_scheme.dir/rdis.cc.o"
  "CMakeFiles/aegis_scheme.dir/rdis.cc.o.d"
  "CMakeFiles/aegis_scheme.dir/safer.cc.o"
  "CMakeFiles/aegis_scheme.dir/safer.cc.o.d"
  "libaegis_scheme.a"
  "libaegis_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
