file(REMOVE_RECURSE
  "CMakeFiles/aegis_pcm.dir/cell_array.cc.o"
  "CMakeFiles/aegis_pcm.dir/cell_array.cc.o.d"
  "CMakeFiles/aegis_pcm.dir/fail_cache.cc.o"
  "CMakeFiles/aegis_pcm.dir/fail_cache.cc.o.d"
  "CMakeFiles/aegis_pcm.dir/lifetime_model.cc.o"
  "CMakeFiles/aegis_pcm.dir/lifetime_model.cc.o.d"
  "CMakeFiles/aegis_pcm.dir/start_gap.cc.o"
  "CMakeFiles/aegis_pcm.dir/start_gap.cc.o.d"
  "libaegis_pcm.a"
  "libaegis_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
