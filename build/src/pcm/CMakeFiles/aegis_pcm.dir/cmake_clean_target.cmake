file(REMOVE_RECURSE
  "libaegis_pcm.a"
)
