# Empty dependencies file for aegis_pcm.
# This may be replaced when dependencies are built.
