
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcm/cell_array.cc" "src/pcm/CMakeFiles/aegis_pcm.dir/cell_array.cc.o" "gcc" "src/pcm/CMakeFiles/aegis_pcm.dir/cell_array.cc.o.d"
  "/root/repo/src/pcm/fail_cache.cc" "src/pcm/CMakeFiles/aegis_pcm.dir/fail_cache.cc.o" "gcc" "src/pcm/CMakeFiles/aegis_pcm.dir/fail_cache.cc.o.d"
  "/root/repo/src/pcm/lifetime_model.cc" "src/pcm/CMakeFiles/aegis_pcm.dir/lifetime_model.cc.o" "gcc" "src/pcm/CMakeFiles/aegis_pcm.dir/lifetime_model.cc.o.d"
  "/root/repo/src/pcm/start_gap.cc" "src/pcm/CMakeFiles/aegis_pcm.dir/start_gap.cc.o" "gcc" "src/pcm/CMakeFiles/aegis_pcm.dir/start_gap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aegis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
