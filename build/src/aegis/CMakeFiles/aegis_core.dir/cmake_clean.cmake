file(REMOVE_RECURSE
  "CMakeFiles/aegis_core.dir/aegis_rw.cc.o"
  "CMakeFiles/aegis_core.dir/aegis_rw.cc.o.d"
  "CMakeFiles/aegis_core.dir/aegis_rw_p.cc.o"
  "CMakeFiles/aegis_core.dir/aegis_rw_p.cc.o.d"
  "CMakeFiles/aegis_core.dir/aegis_scheme.cc.o"
  "CMakeFiles/aegis_core.dir/aegis_scheme.cc.o.d"
  "CMakeFiles/aegis_core.dir/collision_rom.cc.o"
  "CMakeFiles/aegis_core.dir/collision_rom.cc.o.d"
  "CMakeFiles/aegis_core.dir/cost.cc.o"
  "CMakeFiles/aegis_core.dir/cost.cc.o.d"
  "CMakeFiles/aegis_core.dir/factory.cc.o"
  "CMakeFiles/aegis_core.dir/factory.cc.o.d"
  "CMakeFiles/aegis_core.dir/partition.cc.o"
  "CMakeFiles/aegis_core.dir/partition.cc.o.d"
  "CMakeFiles/aegis_core.dir/trackers.cc.o"
  "CMakeFiles/aegis_core.dir/trackers.cc.o.d"
  "libaegis_core.a"
  "libaegis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
