file(REMOVE_RECURSE
  "libaegis_core.a"
)
