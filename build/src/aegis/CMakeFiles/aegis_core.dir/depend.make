# Empty dependencies file for aegis_core.
# This may be replaced when dependencies are built.
