
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aegis/aegis_rw.cc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_rw.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_rw.cc.o.d"
  "/root/repo/src/aegis/aegis_rw_p.cc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_rw_p.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_rw_p.cc.o.d"
  "/root/repo/src/aegis/aegis_scheme.cc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_scheme.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/aegis_scheme.cc.o.d"
  "/root/repo/src/aegis/collision_rom.cc" "src/aegis/CMakeFiles/aegis_core.dir/collision_rom.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/collision_rom.cc.o.d"
  "/root/repo/src/aegis/cost.cc" "src/aegis/CMakeFiles/aegis_core.dir/cost.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/cost.cc.o.d"
  "/root/repo/src/aegis/factory.cc" "src/aegis/CMakeFiles/aegis_core.dir/factory.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/factory.cc.o.d"
  "/root/repo/src/aegis/partition.cc" "src/aegis/CMakeFiles/aegis_core.dir/partition.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/partition.cc.o.d"
  "/root/repo/src/aegis/trackers.cc" "src/aegis/CMakeFiles/aegis_core.dir/trackers.cc.o" "gcc" "src/aegis/CMakeFiles/aegis_core.dir/trackers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheme/CMakeFiles/aegis_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/aegis_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aegis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
