# Empty compiler generated dependencies file for aegis_sim.
# This may be replaced when dependencies are built.
