file(REMOVE_RECURSE
  "CMakeFiles/aegis_sim.dir/block_sim.cc.o"
  "CMakeFiles/aegis_sim.dir/block_sim.cc.o.d"
  "CMakeFiles/aegis_sim.dir/device.cc.o"
  "CMakeFiles/aegis_sim.dir/device.cc.o.d"
  "CMakeFiles/aegis_sim.dir/experiment.cc.o"
  "CMakeFiles/aegis_sim.dir/experiment.cc.o.d"
  "CMakeFiles/aegis_sim.dir/page_sim.cc.o"
  "CMakeFiles/aegis_sim.dir/page_sim.cc.o.d"
  "CMakeFiles/aegis_sim.dir/pairing.cc.o"
  "CMakeFiles/aegis_sim.dir/pairing.cc.o.d"
  "CMakeFiles/aegis_sim.dir/payg.cc.o"
  "CMakeFiles/aegis_sim.dir/payg.cc.o.d"
  "CMakeFiles/aegis_sim.dir/remap.cc.o"
  "CMakeFiles/aegis_sim.dir/remap.cc.o.d"
  "CMakeFiles/aegis_sim.dir/trace.cc.o"
  "CMakeFiles/aegis_sim.dir/trace.cc.o.d"
  "CMakeFiles/aegis_sim.dir/workload.cc.o"
  "CMakeFiles/aegis_sim.dir/workload.cc.o.d"
  "libaegis_sim.a"
  "libaegis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
