
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_sim.cc" "src/sim/CMakeFiles/aegis_sim.dir/block_sim.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/block_sim.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/aegis_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/sim/CMakeFiles/aegis_sim.dir/experiment.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/experiment.cc.o.d"
  "/root/repo/src/sim/page_sim.cc" "src/sim/CMakeFiles/aegis_sim.dir/page_sim.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/page_sim.cc.o.d"
  "/root/repo/src/sim/pairing.cc" "src/sim/CMakeFiles/aegis_sim.dir/pairing.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/pairing.cc.o.d"
  "/root/repo/src/sim/payg.cc" "src/sim/CMakeFiles/aegis_sim.dir/payg.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/payg.cc.o.d"
  "/root/repo/src/sim/remap.cc" "src/sim/CMakeFiles/aegis_sim.dir/remap.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/remap.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/aegis_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/aegis_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/aegis_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aegis/CMakeFiles/aegis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheme/CMakeFiles/aegis_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/aegis_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aegis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
