file(REMOVE_RECURSE
  "libaegis_sim.a"
)
