/**
 * @file
 * Quickstart: protect one 512-bit PCM data block with Aegis, break
 * some of its cells, and watch writes keep succeeding.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "aegis/aegis_scheme.h"
#include "pcm/cell_array.h"
#include "util/rng.h"

using namespace aegis;

int
main()
{
    // An Aegis 9x61 scheme: the paper's strongest 512-bit formation.
    // 67 metadata bits guarantee 11 arbitrary stuck-at faults and in
    // practice absorb 20+.
    core::AegisScheme aegis = core::AegisScheme::forHeight(61, 512);
    pcm::CellArray cells(512);
    Rng rng(2013);

    std::printf("scheme          : %s\n", aegis.name().c_str());
    std::printf("overhead        : %zu bits (%.1f%%)\n",
                aegis.overheadBits(),
                100.0 * static_cast<double>(aegis.overheadBits()) / 512);
    std::printf("guaranteed FTC  : %zu faults\n\n", aegis.hardFtc());

    // A healthy block behaves like plain memory.
    BitVector data = BitVector::random(512, rng);
    auto outcome = aegis.write(cells, data);
    std::printf("clean write     : ok=%d passes=%u\n", outcome.ok,
                outcome.programPasses);

    // Now wear out cells one by one, well beyond the guarantee.
    std::size_t faults = 0;
    while (true) {
        std::uint32_t pos;
        do {
            pos = static_cast<std::uint32_t>(rng.nextBounded(512));
        } while (cells.isStuck(pos));
        cells.injectFaultAtCurrentValue(pos);
        ++faults;

        data = BitVector::random(512, rng);
        outcome = aegis.write(cells, data);
        if (!outcome.ok) {
            std::printf("\nfault %2zu        : unrecoverable — block "
                        "retired\n",
                        faults);
            break;
        }
        const bool roundtrip = aegis.read(cells) == data;
        std::printf("fault %2zu        : ok, slope=%2u, %u pass(es), "
                    "%u repartition(s), readback %s\n",
                    faults, aegis.currentSlope(),
                    outcome.programPasses, outcome.repartitions,
                    roundtrip ? "exact" : "WRONG");
        if (!roundtrip)
            return 1;
    }

    std::printf("\nAegis %s tolerated %zu faults — %.1fx its hard "
                "guarantee of %zu.\n",
                aegis.partition().formation().c_str(), faults - 1,
                static_cast<double>(faults - 1) /
                    static_cast<double>(aegis.hardFtc()),
                aegis.hardFtc());
    return 0;
}
