/**
 * @file
 * Fault-injection lab: a visual walk through the paper's Figure 2.
 *
 * Uses the 32-bit, 5x7 demonstration block from the paper to show
 * (a) how bits map onto the Cartesian rectangle, (b) how groups are
 * lines of a common slope, (c) how a fault collision is resolved by
 * switching slope, and (d) the full functional write path on a real
 * cell array — including the case where the second write reveals a
 * hidden stuck-at-Right fault.
 *
 *   ./build/examples/fault_injection_lab
 */

#include <cstdio>

#include "aegis/aegis_scheme.h"
#include "pcm/cell_array.h"

using namespace aegis;

namespace {

/** Draw the rectangle; each cell shows its group id under slope k. */
void
drawGroups(const core::Partition &part, std::uint32_t k)
{
    std::printf("  slope k=%u (groups by anchor y):\n", k);
    for (int y = static_cast<int>(part.b()) - 1; y >= 0; --y) {
        std::printf("   b=%d |", y);
        for (std::uint32_t a = 0; a < part.a(); ++a) {
            const std::uint32_t pos =
                a * part.b() + static_cast<std::uint32_t>(y);
            if (pos < part.blockBits()) {
                std::printf(" %2u",
                            part.groupOf(pos, k));
            } else {
                std::printf("  .");
            }
        }
        std::printf("\n");
    }
    std::printf("        +");
    for (std::uint32_t a = 0; a < part.a(); ++a)
        std::printf("---");
    std::printf("\n         ");
    for (std::uint32_t a = 0; a < part.a(); ++a)
        std::printf(" a%u", a);
    std::printf("\n");
}

} // namespace

int
main()
{
    // The paper's Figure 2: 32 bits on a 5 x 7 rectangle.
    core::AegisScheme aegis(5, 7, 32);
    const core::Partition &part = aegis.partition();

    std::printf("== The 5x7 Aegis partition of a 32-bit block "
                "(paper Fig. 2) ==\n\n");
    std::printf("bit x maps to (a, b) = (x / 7, x %% 7); 3 positions "
                "at the top right are unmapped.\n\n");
    drawGroups(part, 0);
    std::printf("\n");
    drawGroups(part, 1);

    std::printf("\nTheorem 2 in action: bits 3 and 10 share group %u "
                "under slope 0,\n",
                part.groupOf(3, 0));
    std::printf("but under slopes 1..6 they are in groups ");
    for (std::uint32_t k = 1; k < 7; ++k) {
        std::printf("(%u,%u)%s", part.groupOf(3, k),
                    part.groupOf(10, k), k == 6 ? ".\n" : " ");
    }
    std::printf("They collide ONLY on slope %u.\n\n",
                part.collisionSlope(3, 10));

    std::printf("== Functional write path ==\n\n");
    pcm::CellArray cells(32);

    // Two faults in the same slope-0 group with conflicting needs.
    cells.injectFault(3, true);     // (0,3) stuck at 1
    cells.injectFault(10, false);   // (1,3) stuck at 0

    BitVector data(32);             // all zeros:
    data.set(10, true);             // bit 10 wants 1 -> both Wrong?
    // bit 3 wants 0 but is stuck 1 (Wrong); bit 10 wants 1 but is
    // stuck 0 (Wrong): same group, both Wrong... invert fixes one,
    // corrupts the other -> Aegis must re-partition.
    std::printf("write A: bit3 stuck@1 wants 0, bit10 stuck@0 wants "
                "1 (same group under k=0)\n");
    auto outcome = aegis.write(cells, data);
    std::printf("  -> ok=%d, slope=%u, passes=%u, repartitions=%u\n",
                outcome.ok, aegis.currentSlope(),
                outcome.programPasses, outcome.repartitions);
    std::printf("  -> readback %s\n",
                aegis.read(cells) == data ? "exact" : "WRONG");

    // A write whose data agrees with one stuck value: that fault
    // stays hidden and costs nothing.
    BitVector data2(32, true);      // all ones: bit3 Right, bit10 Wrong
    std::printf("\nwrite B: all-ones (bit3 now stuck-at-Right)\n");
    outcome = aegis.write(cells, data2);
    std::printf("  -> ok=%d, slope=%u, passes=%u\n", outcome.ok,
                aegis.currentSlope(), outcome.programPasses);
    std::printf("  -> readback %s\n",
                aegis.read(cells) == data2 ? "exact" : "WRONG");

    std::printf("\ninversion vector: %s (one flag per group)\n",
                aegis.inversionVector().toString().c_str());
    std::printf("total cell programs so far: %llu\n",
                static_cast<unsigned long long>(
                    cells.totalCellWrites()));
    return 0;
}
