/**
 * @file
 * Scheme explorer: a design-space tool for PCM error protection.
 *
 * Given a block size and a space budget, it tabulates every scheme
 * family in the library — overhead bits, guaranteed (hard) FTC, and a
 * quick Monte-Carlo estimate of the average faults a block actually
 * absorbs (soft FTC) — then recommends the strongest scheme under the
 * budget. This is the workflow a memory-controller architect would
 * use Aegis for.
 *
 *   ./build/examples/scheme_explorer --block-bits=512 --budget=64
 */

#include <iostream>
#include <vector>

#include "aegis/cost.h"
#include "aegis/factory.h"
#include "sim/experiment.h"
#include "util/cli.h"
#include "util/primes.h"
#include "util/table_printer.h"

using namespace aegis;

namespace {

/** Mean faults-at-death of one block under the scheme. */
double
softFtc(const std::string &scheme, std::uint32_t block_bits,
        std::uint32_t blocks)
{
    sim::ExperimentConfig cfg;
    cfg.scheme = scheme;
    cfg.blockBits = block_bits;
    cfg.lifetimeMean = 1e6;    // scale is irrelevant for fault counts
    const sim::BlockStudy study = sim::runBlockStudy(cfg, blocks);
    double sum = 0;
    for (const auto &[faults, count] : study.faultsAtDeath.items())
        sum += static_cast<double>(faults - 1) *
               static_cast<double>(count);
    return sum / static_cast<double>(study.faultsAtDeath.total());
}

} // namespace

int
main(int argc, char **argv)
{
    static constexpr FlagSpec kFlags[] = {
        {"block-bits", FlagKind::Uint, "512",
         "data block size in bits"},
        {"budget", FlagKind::Uint, "64", "metadata budget in bits"},
        {"blocks", FlagKind::Uint, "200",
         "Monte-Carlo blocks per estimate"},
    };
    CliParser cli("scheme_explorer",
                  "Explore the protection design space for one data "
                  "block");
    cli.addAll(kFlags);
    try {
        if (!cli.parse(argc, argv))
            return 0;
        const auto bits =
            static_cast<std::uint32_t>(cli.getUint("block-bits"));
        const auto budget = cli.getUint("budget");
        const auto blocks =
            static_cast<std::uint32_t>(cli.getUint("blocks"));

        std::vector<std::string> candidates;
        for (std::size_t n = 1; n <= 12; ++n)
            candidates.push_back("ecp" + std::to_string(n));
        for (std::size_t n = 8; n <= bits / 4; n *= 2)
            candidates.push_back("safer" + std::to_string(n));
        candidates.push_back("rdis3");
        candidates.push_back("hamming");
        for (std::uint32_t b = core::minimalHeight(bits); b <= 97;
             b = static_cast<std::uint32_t>(nextPrime(b + 1))) {
            const std::uint32_t a = (bits + b - 1) / b;
            candidates.push_back("aegis-" + std::to_string(a) + "x" +
                                 std::to_string(b));
        }

        TablePrinter t("Protection design space for a " +
                       std::to_string(bits) + "-bit block (budget " +
                       std::to_string(budget) + " bits)");
        t.setHeader({"scheme", "bits", "% of data", "hard FTC",
                     "soft FTC (avg)", "within budget"});
        std::string best;
        double best_soft = -1;
        for (const std::string &name : candidates) {
            auto scheme = core::makeScheme(name, bits);
            const double soft = softFtc(name, bits, blocks);
            const bool fits = scheme->overheadBits() <= budget;
            if (fits && soft > best_soft) {
                best_soft = soft;
                best = name;
            }
            t.addRow({name, std::to_string(scheme->overheadBits()),
                      TablePrinter::num(
                          100.0 *
                              static_cast<double>(
                                  scheme->overheadBits()) /
                              bits,
                          1),
                      std::to_string(scheme->hardFtc()),
                      TablePrinter::num(soft, 1), fits ? "yes" : "no"});
        }
        t.print(std::cout);
        std::cout << "\nRecommendation within " << budget
                  << " bits: " << best << " (absorbs ~"
                  << TablePrinter::num(best_soft, 1)
                  << " faults per block on average)\n";
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}
