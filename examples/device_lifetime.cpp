/**
 * @file
 * Device-lifetime study: how long does an 8MB PCM module last under a
 * sustained random write workload, for a scheme of your choice?
 *
 * Runs the paper's Monte-Carlo methodology end to end and reports the
 * endurance story a device architect cares about: mean page lifetime,
 * half lifetime of the module, faults absorbed per page, and the
 * survival curve.
 *
 *   ./build/examples/device_lifetime --scheme=aegis-9x61 --pages=128
 */

#include <iostream>

#include "aegis/factory.h"
#include "sim/experiment.h"
#include "util/cli.h"
#include "util/table_printer.h"

using namespace aegis;

int
main(int argc, char **argv)
{
    static constexpr FlagSpec kFlags[] = {
        {"scheme", FlagKind::String, "aegis-9x61",
         "recovery scheme (see aegis/factory.h)"},
        {"pages", FlagKind::Uint, "128",
         "4KB pages to simulate (2048 = 8MB)"},
        {"block-bits", FlagKind::Uint, "512", "protected block size"},
        {"seed", FlagKind::Uint, "1", "random seed"},
        {"mean-endurance", FlagKind::Double, "1e8",
         "mean cell lifetime (writes)"},
    };
    CliParser cli("device_lifetime",
                  "Estimate a PCM module's endurance under one "
                  "recovery scheme");
    cli.addAll(kFlags);
    try {
        if (!cli.parse(argc, argv))
            return 0;

        sim::ExperimentConfig cfg;
        cfg.scheme = cli.getString("scheme");
        cfg.blockBits =
            static_cast<std::uint32_t>(cli.getUint("block-bits"));
        cfg.pages = static_cast<std::uint32_t>(cli.getUint("pages"));
        cfg.seed = cli.getUint("seed");
        cfg.lifetimeMean = cli.getDouble("mean-endurance");

        const sim::PageStudy study = sim::runPageStudy(cfg);
        sim::ExperimentConfig base = cfg;
        base.scheme = "none";
        const sim::PageStudy none = sim::runPageStudy(base);

        std::cout << "PCM module endurance study\n"
                  << "  scheme            : " << study.scheme << " ("
                  << study.overheadBits << " metadata bits/block, "
                  << TablePrinter::num(100 * study.overheadFraction(),
                                       1)
                  << "%)\n"
                  << "  pages simulated   : " << cfg.pages << " x 4KB ("
                  << cfg.pages * 4 << " KB)\n"
                  << "  cell endurance    : mean "
                  << TablePrinter::num(cfg.lifetimeMean, 0)
                  << " writes, 25% cv (paper model)\n\n";

        std::cout << "  mean page lifetime: "
                  << TablePrinter::intNum(static_cast<long long>(
                         study.pageLifetime.mean()))
                  << " page writes (+/- "
                  << TablePrinter::intNum(static_cast<long long>(
                         study.pageLifetime.ci95()))
                  << ")\n"
                  << "  vs unprotected    : "
                  << TablePrinter::num(
                         sim::lifetimeImprovement(study, none), 1)
                  << "x\n"
                  << "  half lifetime     : "
                  << TablePrinter::intNum(static_cast<long long>(
                         study.survival.timeToFraction(0.5)))
                  << " page writes (half the module dead)\n"
                  << "  faults absorbed   : "
                  << TablePrinter::num(study.recoverableFaults.mean(),
                                       0)
                  << " per page before first data loss\n"
                  << "  re-partitions     : "
                  << TablePrinter::num(study.repartitions.mean(), 1)
                  << " per page over its whole life\n\n";

        TablePrinter curve("  module survival");
        curve.setHeader({"page writes", "% alive"});
        for (const auto &[when, alive] : study.survival.sample(10)) {
            curve.addRow({TablePrinter::intNum(
                              static_cast<long long>(when)),
                          TablePrinter::num(100 * alive, 1)});
        }
        curve.print(std::cout);
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}
