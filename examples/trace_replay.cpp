/**
 * @file
 * Trace replay: run realistic write workloads through a functional
 * PCM device and measure what the recovery scheme actually costs —
 * cell programs per bit (wear amplification over the ideal 0.5 of
 * differential writes), verification rework, re-partitions — while
 * faults accumulate.
 *
 *   ./build/examples/trace_replay --scheme=aegis-17x31 \
 *       --writes=2000 --faults-per-kwrite=40
 */

#include <iostream>
#include <memory>

#include "aegis/factory.h"
#include "sim/trace.h"
#include "util/cli.h"
#include "util/table_printer.h"

using namespace aegis;

int
main(int argc, char **argv)
{
    static constexpr FlagSpec kFlags[] = {
        {"scheme", FlagKind::String, "aegis-17x31", "recovery scheme"},
        {"pages", FlagKind::Uint, "8", "device size in 4KB pages"},
        {"writes", FlagKind::Uint, "1500",
         "page writes to replay per trace"},
        {"faults-per-kwrite", FlagKind::Double, "200.0",
         "stuck-at faults injected per 1000 page writes"},
        {"seed", FlagKind::Uint, "1", "random seed"},
    };
    CliParser cli("trace_replay",
                  "Replay synthetic write traces against a "
                  "functional PCM device");
    cli.addAll(kFlags);
    try {
        if (!cli.parse(argc, argv))
            return 0;

        const auto pages =
            static_cast<std::uint32_t>(cli.getUint("pages"));
        const pcm::Geometry geom{512, 4096, pages};
        const std::string scheme_name = cli.getString("scheme");

        TablePrinter t("Trace replay — " + scheme_name + ", " +
                       std::to_string(pages) + " pages, " +
                       std::to_string(cli.getUint("writes")) +
                       " page writes/trace");
        t.setHeader({"trace", "programs/bit", "failed writes",
                     "dead blocks", "repartitions", "faults"});

        sim::TraceShape shape;
        shape.pages = pages;

        for (const char *spec : {"uniform", "sequential",
                                 "hotcold:0.1:0.9", "zipfian:0.99"}) {
            auto proto = core::makeScheme(scheme_name, 512);
            auto dir = std::make_shared<pcm::OracleFaultDirectory>();
            sim::PcmDevice device(geom, *proto,
                                  proto->requiresDirectory()
                                      ? dir
                                      : nullptr);
            const Rng master(cli.getUint("seed"));
            auto trace = sim::makeTrace(spec, shape, master.split(0));
            Rng rng = master.split(1);
            const sim::TraceReplayStats stats = sim::replayTrace(
                device, *trace, cli.getUint("writes"),
                cli.getDouble("faults-per-kwrite"), rng);
            t.addRow({trace->name(),
                      TablePrinter::num(stats.programsPerBit(), 3),
                      std::to_string(stats.failedWrites),
                      std::to_string(stats.deadBlocks),
                      TablePrinter::intNum(static_cast<long long>(
                          stats.repartitions)),
                      std::to_string(stats.faultsInjected)});
        }
        t.print(std::cout);
        std::cout << "\n(programs/bit: 0.5 is the differential-write "
                     "ideal for random data;\n the excess is the "
                     "scheme's inversion/rework wear.)\n";
        return 0;
    } catch (const std::exception &ex) {
        std::cerr << "error: " << ex.what() << "\n";
        return 1;
    }
}
